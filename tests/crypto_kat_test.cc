// Known-answer tests for the crypto layer against published NIST/RFC/IEEE
// vectors: FIPS-197 (AES), SP 800-38A (CTR), IEEE 1619 (XTS), FIPS 180-4
// (SHA-256), RFC 4231 (HMAC-SHA256), and RFC 4493 (AES-CMAC).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes.h"
#include "crypto/aes_ctr.h"
#include "crypto/aes_xts.h"
#include "crypto/cmac.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace secddr::crypto {
namespace {

std::vector<std::uint8_t> unhex(const std::string& s) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < s.size(); i += 2)
    out.push_back(
        static_cast<std::uint8_t>(std::stoi(s.substr(i, 2), nullptr, 16)));
  return out;
}

std::string hex(const std::uint8_t* p, std::size_t n) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (std::size_t i = 0; i < n; ++i) {
    s += digits[p[i] >> 4];
    s += digits[p[i] & 0xf];
  }
  return s;
}

template <typename C>
std::string hex(const C& c) {
  return hex(c.data(), c.size());
}

template <std::size_t N>
std::array<std::uint8_t, N> from_hex(const std::string& s) {
  std::array<std::uint8_t, N> a{};
  const auto v = unhex(s);
  EXPECT_EQ(v.size(), N) << "malformed hex literal: " << s;
  std::memcpy(a.data(), v.data(), std::min(v.size(), N));
  return a;
}

// --- AES (FIPS-197 appendix C, SP 800-38A F.1) ----------------------------

TEST(AesKat, Fips197Appendix_C1_Aes128) {
  const Aes aes(from_hex<16>("000102030405060708090a0b0c0d0e0f"));
  const Block pt = from_hex<16>("00112233445566778899aabbccddeeff");
  const Block ct = aes.encrypt(pt);
  EXPECT_EQ(hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(hex(aes.decrypt(ct)), hex(pt));
}

TEST(AesKat, Fips197Appendix_C3_Aes256) {
  const Aes aes(from_hex<32>(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const Block pt = from_hex<16>("00112233445566778899aabbccddeeff");
  const Block ct = aes.encrypt(pt);
  EXPECT_EQ(hex(ct), "8ea2b7ca516745bfeafc49904b496089");
  EXPECT_EQ(hex(aes.decrypt(ct)), hex(pt));
}

TEST(AesKat, Sp800_38a_EcbAes128) {
  const Aes aes(from_hex<16>("2b7e151628aed2a6abf7158809cf4f3c"));
  const std::pair<const char*, const char*> vec[] = {
      {"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
      {"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
      {"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
  };
  for (const auto& [pt, ct] : vec) {
    EXPECT_EQ(hex(aes.encrypt(from_hex<16>(pt))), ct);
    EXPECT_EQ(hex(aes.decrypt(from_hex<16>(ct))), pt);
  }
}

// --- AES-CTR (SP 800-38A F.5.1) -------------------------------------------

TEST(AesCtrKat, Sp800_38a_CtrAes128) {
  const Aes aes(from_hex<16>("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block iv = from_hex<16>("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  std::vector<std::uint8_t> data = unhex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  ctr_xcrypt(aes, iv, data.data(), data.size());
  EXPECT_EQ(hex(data.data(), data.size()),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
  // Decrypt == encrypt for a stream cipher.
  ctr_xcrypt(aes, iv, data.data(), data.size());
  EXPECT_EQ(hex(data.data(), data.size()),
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411e5fbc1191a0a52ef"
            "f69f2445df4f9b17ad2b417be66c3710");
}

TEST(AesCtrKat, KeystreamMatchesXcrypt) {
  const Aes aes(from_hex<16>("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block iv = from_hex<16>("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const auto ks = ctr_keystream(aes, iv, 33);
  std::vector<std::uint8_t> zeros(33, 0);
  ctr_xcrypt(aes, iv, zeros.data(), zeros.size());
  EXPECT_EQ(hex(ks.data(), ks.size()), hex(zeros.data(), zeros.size()));
}

// --- AES-XTS (IEEE 1619-2007 annex vectors) -------------------------------

TEST(AesXtsKat, Ieee1619_Vector1) {
  AesXts xts(from_hex<16>("00000000000000000000000000000000"),
             from_hex<16>("00000000000000000000000000000000"));
  std::vector<std::uint8_t> data(32, 0);
  xts.encrypt(0, data.data(), data.size());
  EXPECT_EQ(hex(data.data(), data.size()),
            "917cf69ebd68b2ec9b9fe9a3eadda692"
            "cd43d2f59598ed858c02c2652fbf922e");
  xts.decrypt(0, data.data(), data.size());
  EXPECT_EQ(hex(data.data(), data.size()), std::string(64, '0'));
}

TEST(AesXtsKat, Ieee1619_Vector2) {
  AesXts xts(from_hex<16>("11111111111111111111111111111111"),
             from_hex<16>("22222222222222222222222222222222"));
  std::vector<std::uint8_t> data(32, 0x44);
  xts.encrypt(0x3333333333ull, data.data(), data.size());
  EXPECT_EQ(hex(data.data(), data.size()),
            "c454185e6a16936e39334038acef838b"
            "fb186fff7480adc4289382ecd6d394f0");
  xts.decrypt(0x3333333333ull, data.data(), data.size());
  EXPECT_EQ(hex(data.data(), data.size()), std::string(64, '4'));
}

TEST(AesXtsKat, Ieee1619_Vector3) {
  AesXts xts(from_hex<16>("fffefdfcfbfaf9f8f7f6f5f4f3f2f1f0"),
             from_hex<16>("22222222222222222222222222222222"));
  std::vector<std::uint8_t> data(32, 0x44);
  xts.encrypt(0x3333333333ull, data.data(), data.size());
  EXPECT_EQ(hex(data.data(), data.size()),
            "af85336b597afc1a900b2eb21ec949d2"
            "92df4c047e0b21532186a5971a227a89");
  xts.decrypt(0x3333333333ull, data.data(), data.size());
  EXPECT_EQ(hex(data.data(), data.size()), std::string(64, '4'));
}

// --- SHA-256 (FIPS 180-4 / NIST examples) ---------------------------------

TEST(Sha256Kat, Fips180_ShortMessages) {
  EXPECT_EQ(hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039"
      "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Kat, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67"
            "f1809a48a497200e046d39ccc7112cd0");
}

// --- HMAC-SHA256 (RFC 4231) -----------------------------------------------

TEST(HmacKat, Rfc4231) {
  struct Case {
    std::string key_hex, data_hex, mac_hex;
  };
  const std::vector<Case> cases = {
      // Test case 1
      {"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
       "4869205468657265",  // "Hi There"
       "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
      // Test case 2 ("Jefe" / "what do ya want for nothing?")
      {"4a656665",
       "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
       "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
      // Test case 3 (50 x 0xdd under 20 x 0xaa)
      {"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
       "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
       "dddddddddddddddddddddddddddddddddddd",
       "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
      // Test case 4 (50 x 0xcd under 25-byte key)
      {"0102030405060708090a0b0c0d0e0f10111213141516171819",
       "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd"
       "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",
       "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"},
      // Test case 6 (131 x 0xaa key, hashed first)
      {std::string(262, 'a'),
       "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a"
       "65204b6579202d2048617368204b6579204669727374",
       "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(hex(hmac_sha256(unhex(cases[i].key_hex),
                              unhex(cases[i].data_hex))),
              cases[i].mac_hex);
  }
}

// --- AES-CMAC (RFC 4493 section 4) ----------------------------------------

TEST(CmacKat, Rfc4493) {
  const Cmac cmac(from_hex<16>("2b7e151628aed2a6abf7158809cf4f3c"));
  const std::vector<std::uint8_t> msg = unhex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");

  EXPECT_EQ(hex(cmac.tag(msg.data(), 0)),
            "bb1d6929e95937287fa37d129b756746");
  EXPECT_EQ(hex(cmac.tag(msg.data(), 16)),
            "070a16b46b4d4144f79bdd9dd04a287c");
  EXPECT_EQ(hex(cmac.tag(msg.data(), 40)),
            "dfa66747de9ae63030ca32611497c827");
  EXPECT_EQ(hex(cmac.tag(msg.data(), 64)),
            "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(CmacKat, Tag64IsTruncatedTag) {
  const Cmac cmac(from_hex<16>("2b7e151628aed2a6abf7158809cf4f3c"));
  const std::vector<std::uint8_t> msg =
      unhex("6bc1bee22e409f96e93d7e117393172a");
  const Block full = cmac.tag(msg.data(), msg.size());
  std::uint64_t expect = 0;
  std::memcpy(&expect, full.data(), 8);
  EXPECT_EQ(cmac.tag64(msg.data(), msg.size()), expect);
}

}  // namespace
}  // namespace secddr::crypto
