// Functional SecDDR protocol: E-MAC engine, eWCRC, DIMM device model, and
// controller read/write round-trips on a benign channel.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/bus.h"
#include "core/controller.h"
#include "core/dimm.h"
#include "core/emac.h"
#include "core/ewcrc.h"
#include "core/session.h"

namespace secddr::core {
namespace {

// ---------------------------------------------------------------- E-MAC

TEST(EmacEngine, CounterParityDiscipline) {
  EmacEngine e(crypto::Key128{1}, 0, 0);
  EXPECT_EQ(e.next_counter(Dir::kRead), 0u);    // even, advance to 2
  EXPECT_EQ(e.next_counter(Dir::kWrite), 3u);   // odd (2+1), advance to 6
  EXPECT_EQ(e.next_counter(Dir::kWrite), 7u);   // odd (6+1), advance to 10
  EXPECT_EQ(e.next_counter(Dir::kRead), 10u);   // even
  EXPECT_EQ(e.next_counter(Dir::kRead), 12u);
  // Every read value is even, every write value odd.
}

TEST(EmacEngine, PeekDoesNotConsume) {
  EmacEngine e(crypto::Key128{1}, 0, 10);
  EXPECT_EQ(e.peek_counter(Dir::kRead), 10u);
  EXPECT_EQ(e.peek_counter(Dir::kRead), 10u);
  EXPECT_EQ(e.peek_counter(Dir::kWrite), 11u);
  EXPECT_EQ(e.next_counter(Dir::kRead), 10u);
  EXPECT_EQ(e.peek_counter(Dir::kRead), 12u);
}

TEST(EmacEngine, ParityInvariantUnderRandomSequences) {
  EmacEngine e(crypto::Key128{4}, 0, 1);  // odd init normalizes to even
  Xoshiro256 rng(8);
  for (int i = 0; i < 1000; ++i) {
    const Dir d = rng.chance(0.5) ? Dir::kWrite : Dir::kRead;
    const std::uint64_t c = e.next_counter(d);
    EXPECT_EQ(c & 1, d == Dir::kWrite ? 1u : 0u);
  }
}

TEST(EmacEngine, ConversionDesyncIsPermanent) {
  // The property behind §III-B's WR->RD defense: after the device serves
  // a read where the controller issued a write, the two ends never agree
  // on a read counter again.
  const crypto::Key128 kt{6};
  EmacEngine mc(kt, 0, 100), dev(kt, 0, 100);
  mc.next_counter(Dir::kWrite);  // converted command:
  dev.next_counter(Dir::kRead);  // device saw a read instead
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(mc.peek_counter(Dir::kRead), dev.peek_counter(Dir::kRead));
    const Dir d = (i % 3 == 0) ? Dir::kWrite : Dir::kRead;
    mc.next_counter(d);
    dev.next_counter(d);
  }
}

TEST(EmacEngine, TwoEnginesWithSameKeyStayInSync) {
  // The fundamental channel property: both ends derive identical pads
  // from their synchronized counters without communicating.
  const crypto::Key128 kt{9, 8, 7};
  EmacEngine mc(kt, 1, 1000);
  EmacEngine chip(kt, 1, 1000);
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    const Dir d = rng.chance(0.4) ? Dir::kWrite : Dir::kRead;
    const std::uint64_t c1 = mc.next_counter(d);
    const std::uint64_t c2 = chip.next_counter(d);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(mc.otp(c1), chip.otp(c2));
  }
}

TEST(EmacEngine, OtpNeverRepeatsAcrossCounters) {
  EmacEngine e(crypto::Key128{5}, 0, 0);
  std::set<std::uint64_t> pads;
  for (std::uint64_t c = 0; c < 2000; ++c)
    EXPECT_TRUE(pads.insert(e.otp(c)).second) << "pad repeat at " << c;
}

TEST(EmacEngine, RanksHaveIndependentPads) {
  const crypto::Key128 kt{2};
  EmacEngine r0(kt, 0), r1(kt, 1);
  EXPECT_NE(r0.otp(42), r1.otp(42));
}

TEST(EmacEngine, EncryptDecryptRoundTrip) {
  EmacEngine e(crypto::Key128{7}, 0);
  const std::uint64_t mac = 0xDEADBEEFCAFEBABEull;
  const std::uint64_t emac = e.encrypt_mac(mac, 12);
  EXPECT_NE(emac, mac);
  EXPECT_EQ(e.decrypt_mac(emac, 12), mac);
  EXPECT_NE(e.decrypt_mac(emac, 14), mac);  // wrong counter fails
}

TEST(EmacEngine, OtpWBindsAddress) {
  EmacEngine e(crypto::Key128{7}, 0);
  WriteAddress a{0, 1, 2, 100, 7};
  WriteAddress b = a;
  b.row = 101;
  EXPECT_NE(e.otp_w(5, a.code()), e.otp_w(5, b.code()));
  EXPECT_NE(e.otp_w(5, a.code()), e.otp_w(7, a.code()));
}

TEST(MacEngine, BindsAddressAndData) {
  MacEngine m(crypto::Key128{3});
  const CacheLine line = CacheLine::filled(0x5A);
  const std::uint64_t mac = m.compute(0x1000, line);
  EXPECT_NE(m.compute(0x1040, line), mac);  // different address
  CacheLine other = line;
  other[13] ^= 1;
  EXPECT_NE(m.compute(0x1000, other), mac);  // different data
  EXPECT_EQ(m.compute(0x1000, line), mac);   // deterministic
}

// ---------------------------------------------------------------- eWCRC

TEST(Ewcrc, AddressCodePacksDistinctly) {
  WriteAddress a{1, 2, 3, 500, 63};
  WriteAddress b = a;
  EXPECT_EQ(a.code(), b.code());
  b.column = 62;
  EXPECT_NE(a.code(), b.code());
  b = a;
  b.row = 501;
  EXPECT_NE(a.code(), b.code());
  b = a;
  b.rank = 0;
  EXPECT_NE(a.code(), b.code());
}

TEST(Ewcrc, DetectsDataCorruption) {
  WriteAddress addr{0, 0, 0, 1, 1};
  CacheLine line = CacheLine::filled(0x11);
  const auto crcs = ewcrc_data_chips(addr, line);
  line[5] ^= 0x80;  // chip 0 carries bytes 0..7
  const auto crcs2 = ewcrc_data_chips(addr, line);
  EXPECT_NE(crcs[0], crcs2[0]);
  for (unsigned chip = 1; chip < kDataChips; ++chip)
    EXPECT_EQ(crcs[chip], crcs2[chip]);  // other slices unaffected
}

TEST(Ewcrc, DetectsAddressCorruption) {
  const CacheLine line = CacheLine::filled(0x42);
  WriteAddress a{0, 1, 2, 77, 10};
  WriteAddress wrong_row = a;
  wrong_row.row = 78;
  const auto c1 = ewcrc_data_chips(a, line);
  const auto c2 = ewcrc_data_chips(wrong_row, line);
  for (unsigned chip = 0; chip < kDataChips; ++chip)
    EXPECT_NE(c1[chip], c2[chip]);
}

TEST(Ewcrc, EccChipCrcCoversMac) {
  WriteAddress a{0, 0, 0, 5, 5};
  EXPECT_NE(ewcrc_ecc_chip(a, 0x1111), ewcrc_ecc_chip(a, 0x1112));
}

// ---------------------------------------------------------------- session

SessionConfig tiny_config(std::uint64_t seed = 1) {
  SessionConfig cfg;
  cfg.dimm.geometry.ranks = 2;
  cfg.dimm.geometry.bank_groups = 2;
  cfg.dimm.geometry.banks_per_group = 2;
  cfg.dimm.geometry.rows_per_bank = 16;
  cfg.dimm.geometry.columns_per_row = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(Session, WriteReadRoundTripXts) {
  auto s = SecureMemorySession::create(tiny_config());
  ASSERT_NE(s, nullptr);
  Xoshiro256 rng(9);
  for (int i = 0; i < 200; ++i) {
    const Addr a = line_base(rng.next() % s->capacity());
    CacheLine line;
    for (auto& b : line.bytes) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(s->write(a, line), Violation::kNone);
    const auto r = s->read(a);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.data, line);
  }
  EXPECT_EQ(s->stats().violations(), 0u);
}

TEST(Session, WriteReadRoundTripCtr) {
  auto cfg = tiny_config(2);
  cfg.encryption = DataEncryption::kCtr;
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  const Addr a = 0x40 * 3;
  const CacheLine v1 = CacheLine::filled(0xAA);
  const CacheLine v2 = CacheLine::filled(0xBB);
  EXPECT_EQ(s->write(a, v1), Violation::kNone);
  EXPECT_EQ(s->read(a).data, v1);
  EXPECT_EQ(s->write(a, v2), Violation::kNone);
  EXPECT_EQ(s->read(a).data, v2);
}

TEST(Session, CtrModeCiphertextVariesOverWritesOfSameValue) {
  // Counter-mode gives temporal uniqueness; XTS does not (§IV-B).
  auto cfg = tiny_config(3);
  cfg.encryption = DataEncryption::kCtr;
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  const Addr a = 0;
  const CacheLine v = CacheLine::filled(0x77);
  s->write(a, v);
  CacheLine ct1;
  ASSERT_TRUE(s->dimm().peek_line(0, 0, &ct1, nullptr));
  s->write(a, v);
  CacheLine ct2;
  ASSERT_TRUE(s->dimm().peek_line(0, 0, &ct2, nullptr));
  EXPECT_FALSE(ct1 == ct2);
}

TEST(Session, XtsCiphertextDeterministicForSameValue) {
  auto s = SecureMemorySession::create(tiny_config(4));
  ASSERT_NE(s, nullptr);
  const CacheLine v = CacheLine::filled(0x77);
  s->write(0, v);
  CacheLine ct1;
  ASSERT_TRUE(s->dimm().peek_line(0, 0, &ct1, nullptr));
  s->write(0, v);
  CacheLine ct2;
  ASSERT_TRUE(s->dimm().peek_line(0, 0, &ct2, nullptr));
  EXPECT_EQ(ct1, ct2);
}

TEST(Session, DataAtRestIsCiphertextAndMacIsStored) {
  auto s = SecureMemorySession::create(tiny_config(5));
  ASSERT_NE(s, nullptr);
  const CacheLine pt = CacheLine::filled(0x33);
  s->write(0, pt);
  CacheLine at_rest;
  std::uint64_t mac = 0;
  ASSERT_TRUE(s->dimm().peek_line(0, 0, &at_rest, &mac));
  EXPECT_FALSE(at_rest == pt) << "data must not rest in plaintext";
  EXPECT_NE(mac, 0u) << "MAC must be stored with the data";
}

TEST(Session, ReadsSpanAllRanksAndBanks) {
  auto s = SecureMemorySession::create(tiny_config(6));
  ASSERT_NE(s, nullptr);
  for (Addr a = 0; a < s->capacity(); a += kLineSize) {
    const CacheLine v = CacheLine::filled(static_cast<std::uint8_t>(a >> 6));
    ASSERT_EQ(s->write(a, v), Violation::kNone) << "addr " << a;
    ASSERT_EQ(s->read(a).data, v) << "addr " << a;
  }
  EXPECT_EQ(s->stats().violations(), 0u);
}

TEST(Session, UnwrittenLinesFailVerification) {
  // A never-written line has no valid MAC: integrity-protected memory
  // must not return fabricated data as valid.
  auto s = SecureMemorySession::create(tiny_config(7));
  ASSERT_NE(s, nullptr);
  const auto r = s->read(0x40);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violation, Violation::kMacMismatch);
}

TEST(Session, ClearedMemoryReadsAsZeros) {
  auto cfg = tiny_config(8);
  cfg.clear_memory = true;  // §III-F: processor clears memory at boot
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  const auto r = s->read(0x80);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, CacheLine{});
}

TEST(Session, CountersAdvanceInLockstep) {
  auto s = SecureMemorySession::create(tiny_config(9));
  ASSERT_NE(s, nullptr);
  const CacheLine v{};
  for (int i = 0; i < 50; ++i) {
    s->write(static_cast<Addr>(i) * kLineSize, v);
    (void)s->read(static_cast<Addr>(i) * kLineSize);
  }
  for (unsigned r = 0; r < 2; ++r) {
    EXPECT_EQ(s->controller().transaction_counter(r),
              s->dimm().transaction_counter(r))
        << "rank " << r << " desynchronized on a benign channel";
  }
}

TEST(Session, SleepWakePreservesState) {
  auto s = SecureMemorySession::create(tiny_config(10));
  ASSERT_NE(s, nullptr);
  const CacheLine v = CacheLine::filled(0xEE);
  s->write(0x100, v);
  s->sleep();
  EXPECT_TRUE(s->asleep());
  s->wake();
  const auto r = s->read(0x100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, v);
}

TEST(Session, TrustedDimmPlacementWorksOnBenignChannel) {
  auto cfg = tiny_config(11);
  cfg.dimm.placement = LogicPlacement::kEccDataBuffer;
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  const CacheLine v = CacheLine::filled(0x21);
  EXPECT_EQ(s->write(0x40, v), Violation::kNone);
  EXPECT_EQ(s->read(0x40).data, v);
}

TEST(Session, WithoutEwcrcStillWorksOnBenignChannel) {
  auto cfg = tiny_config(12);
  cfg.dimm.ewcrc_enabled = false;
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  const CacheLine v = CacheLine::filled(0x44);
  EXPECT_EQ(s->write(0x80, v), Violation::kNone);
  EXPECT_EQ(s->read(0x80).data, v);
}

}  // namespace
}  // namespace secddr::core
