// Workload suite and synthetic trace generator properties.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr::workloads {
namespace {

TEST(Suite, Has29WorkloadsInFigureOrder) {
  const auto& s = suite();
  EXPECT_EQ(s.size(), 29u);
  EXPECT_EQ(s.front().name, "perlbench");
  EXPECT_EQ(s.back().name, "sssp");
}

TEST(Suite, MemoryIntensiveMatchesMpkiRule) {
  for (const auto& w : suite())
    EXPECT_EQ(w.memory_intensive, w.mpki >= 10.0) << w.name;
}

TEST(Suite, PaperCalloutsPresent) {
  // Fig. 7 axis callouts: mcf 150.1, lbm 56.7, sssp 50.5.
  EXPECT_DOUBLE_EQ(find("mcf")->mpki, 150.1);
  EXPECT_DOUBLE_EQ(find("lbm")->mpki, 56.7);
  EXPECT_DOUBLE_EQ(find("sssp")->mpki, 50.5);
}

TEST(Suite, LbmIsTheWriteIntensiveOutlier) {
  // §V-A: lbm is penalized by the eWCRC write burst because it is
  // write-intensive; the model must reflect that.
  const double lbm_wf = find("lbm")->write_frac;
  for (const auto& w : suite())
    if (w.name != "lbm") {
      EXPECT_GT(lbm_wf, w.write_frac) << w.name;
    }
}

TEST(Suite, GraphWorkloadsAreRandomPattern) {
  for (const char* name : {"bfs", "pr", "tc", "cc", "bc", "sssp"})
    EXPECT_EQ(find(name)->pattern, Pattern::kRandom) << name;
}

TEST(Suite, FindUnknownReturnsNull) {
  EXPECT_EQ(find("nonexistent"), nullptr);
}

TEST(Suite, SeedsAreUnique) {
  std::set<std::uint64_t> seeds;
  for (const auto& w : suite()) EXPECT_TRUE(seeds.insert(w.seed).second);
}

// ---------------------------------------------------------------- generator

TEST(Generator, Deterministic) {
  const auto desc = *find("gcc");
  SyntheticTrace a(desc, 0), b(desc, 0);
  for (int i = 0; i < 1000; ++i) {
    sim::TraceRecord ra, rb;
    ASSERT_TRUE(a.next(ra));
    ASSERT_TRUE(b.next(rb));
    EXPECT_EQ(ra.addr, rb.addr);
    EXPECT_EQ(ra.gap, rb.gap);
    EXPECT_EQ(ra.is_write, rb.is_write);
  }
}

TEST(Generator, CoresGetDisjointAddressSpaces) {
  const auto desc = *find("mcf");
  SyntheticTrace c0(desc, 0), c1(desc, 1);
  for (int i = 0; i < 2000; ++i) {
    sim::TraceRecord r0, r1;
    c0.next(r0);
    c1.next(r1);
    EXPECT_LT(r0.addr, 2ull << 30);
    EXPECT_GE(r1.addr, 2ull << 30);
    EXPECT_LT(r1.addr, 4ull << 30);
  }
}

TEST(Generator, AddressesStayWithinFootprint) {
  const auto desc = *find("xz");
  SyntheticTrace t(desc, 0);
  // Footprint rounds up to the next power-of-two page count.
  std::uint64_t pages = desc.footprint_bytes / 4096;
  while (pages & (pages - 1)) pages = (pages | (pages - 1)) + 1;
  const Addr limit = pages * 4096;
  for (int i = 0; i < 20000; ++i) {
    sim::TraceRecord r;
    t.next(r);
    EXPECT_LT(r.addr, limit);
  }
}

TEST(Generator, WriteFractionApproximatesDescriptor) {
  const auto desc = *find("lbm");
  SyntheticTrace t(desc, 0);
  int writes = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sim::TraceRecord r;
    t.next(r);
    writes += r.is_write;
  }
  EXPECT_NEAR(writes / static_cast<double>(n), desc.write_frac, 0.02);
}

TEST(Generator, GapMatchesMemoryIntensity) {
  const auto desc = *find("gcc");
  SyntheticTrace t(desc, 0);
  double total_gap = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sim::TraceRecord r;
    t.next(r);
    total_gap += r.gap;
  }
  // instructions per access = gap + 1 ~= 1000 / mem_per_kinst.
  const double ipa = total_gap / n + 1.0;
  EXPECT_NEAR(ipa, 1000.0 / desc.mem_per_kinst, 0.35);
}

TEST(Generator, RandomPatternTouchesManyPages) {
  const auto desc = *find("pr");
  SyntheticTrace t(desc, 0);
  std::unordered_set<Addr> pages;
  for (int i = 0; i < 30000; ++i) {
    sim::TraceRecord r;
    t.next(r);
    pages.insert(r.addr >> 12);
  }
  EXPECT_GT(pages.size(), 3000u);
}

TEST(Generator, StreamingPatternSweepsSequentially) {
  // Consecutive cold addresses of a streaming workload are line-
  // sequential within a page (post-scramble pages may jump).
  const auto desc = *find("lbm");
  SyntheticTrace t(desc, 0);
  int sequential = 0, cold_pairs = 0;
  Addr prev = 0;
  bool have_prev = false;
  for (int i = 0; i < 50000; ++i) {
    sim::TraceRecord r;
    t.next(r);
    // Heuristic: cold addresses are outside the 512KB warm region base.
    if (have_prev) {
      if (r.addr == prev + kLineSize) ++sequential;
      ++cold_pairs;
    }
    prev = r.addr;
    have_prev = true;
  }
  // Streaming + hot/warm interleaving: back-to-back cold accesses are
  // +1-line sequential, which shows up as a small but clearly non-random
  // fraction of all consecutive pairs (random would be ~0).
  EXPECT_GT(sequential, cold_pairs / 200);
}

TEST(Generator, PageScrambleIsInjective) {
  // The cold stream sweeps the footprint above the 256KB warm region
  // (192 of 256 pages in this 1MB footprint). An injective page
  // permutation maps those to at least 192 distinct physical pages; a
  // colliding permutation would produce fewer.
  WorkloadDesc d = *find("exchange2");
  d.footprint_bytes = 1 << 20;  // 256 pages
  d.mpki = d.mem_per_kinst;     // (almost) all accesses cold
  d.pattern = Pattern::kStreaming;
  d.write_frac = 0;
  SyntheticTrace t(d, 0);
  std::set<Addr> seen;
  const int pages = 256, lines_per_page = 4096 / 64;
  for (int i = 0; i < 6 * pages * lines_per_page; ++i) {
    sim::TraceRecord r;
    t.next(r);
    seen.insert(r.addr >> 12);
  }
  EXPECT_GE(seen.size(), 192u)
      << "page permutation collided: cold range under-covered";
  EXPECT_LE(seen.size(), static_cast<std::size_t>(pages));
}

}  // namespace
}  // namespace secddr::workloads
