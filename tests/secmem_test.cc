// Secure-memory timing models: metadata layout, metadata cache, and the
// per-configuration traffic/latency semantics of the SecurityEngine.
#include <gtest/gtest.h>

#include "dram/system.h"
#include "secmem/layout.h"
#include "secmem/metadata_cache.h"
#include "secmem/model.h"
#include "secmem/params.h"

namespace secddr::secmem {
namespace {

constexpr std::uint64_t kDataBytes = 1ull << 30;  // 1GB data region

dram::Geometry small_geometry() {
  dram::Geometry g;
  g.rows_per_bank = 1 << 14;  // 4GB capacity: room for metadata
  return g;
}

// Harness: engine + DRAM, driven in core cycles.
struct Rig {
  explicit Rig(SecurityParams p)
      : params(std::move(p)),
        layout(params, kDataBytes),
        dram(small_geometry(),
             params.ewcrc ? dram::Timings::ddr4_3200().with_ewcrc_burst()
                          : dram::Timings::ddr4_3200(),
             3200.0),
        engine(params, layout, dram) {}

  // Runs until all outstanding work drains; returns ready reads.
  std::vector<ReadReady> drain(Cycle limit = 1'000'000) {
    std::vector<ReadReady> out;
    while (engine.outstanding() > 0 && now < limit) {
      ++now;
      dram.tick_core_cycle();
      engine.tick(now);
      for (const auto& r : engine.ready()) out.push_back(r);
      engine.ready().clear();
    }
    return out;
  }

  SecurityParams params;
  MetadataLayout layout;
  dram::DramSystem dram;
  SecurityEngine engine;
  Cycle now = 0;
};

// ---------------------------------------------------------------- params

TEST(Params, NamedConfigsAreDistinct) {
  EXPECT_EQ(SecurityParams::baseline_tree_ctr().rap, Rap::kIntegrityTree);
  EXPECT_EQ(SecurityParams::secddr_ctr().rap, Rap::kSecDdr);
  EXPECT_TRUE(SecurityParams::secddr_ctr().ewcrc);
  EXPECT_TRUE(SecurityParams::secddr_xts().ewcrc);
  EXPECT_FALSE(SecurityParams::encrypt_only_xts().verify_mac);
  EXPECT_EQ(SecurityParams::invisimem(Encryption::kXts).rap,
            Rap::kAuthChannel);
  EXPECT_TRUE(SecurityParams::hash_tree8_xts().hash_tree_over_macs);
  EXPECT_FALSE(SecurityParams::hash_tree8_xts().macs_in_ecc);
}

// ---------------------------------------------------------------- layout

TEST(Layout, CounterRegionSizedByPacking) {
  for (unsigned pack : {8u, 64u, 128u}) {
    MetadataLayout l(SecurityParams::encrypt_only_ctr(pack), kDataBytes);
    EXPECT_EQ(l.counter_lines(), kDataBytes / kLineSize / pack);
  }
}

TEST(Layout, TreeLevelsShrinkByArity) {
  const MetadataLayout l(SecurityParams::baseline_tree_ctr(64, 64),
                         kDataBytes);
  // 1GB data, 64 counters/line -> 256K counter lines; 64-ary:
  // L1=4096, L2=64, then 1 (root, on-chip). => 2 stored levels.
  EXPECT_EQ(l.counter_lines(), (kDataBytes / kLineSize) / 64);
  ASSERT_EQ(l.tree_levels(), 2u);
  EXPECT_EQ(l.tree_nodes(1), 4096u);
  EXPECT_EQ(l.tree_nodes(2), 64u);
}

TEST(Layout, HashTreeIsMuchDeeper) {
  const MetadataLayout hash(SecurityParams::hash_tree8_xts(), kDataBytes);
  const MetadataLayout ctr64(SecurityParams::baseline_tree_ctr(64, 64),
                             kDataBytes);
  // 1GB: MAC lines = 2M; 8-ary: 256K, 32K, 4K, 512, 64, 8 -> 6 levels.
  EXPECT_EQ(hash.mac_lines(), (kDataBytes / kLineSize) / 8);
  EXPECT_GT(hash.tree_levels(), ctr64.tree_levels() + 2);
}

TEST(Layout, RegionsAreDisjointAndOrdered) {
  const MetadataLayout l(SecurityParams::baseline_tree_ctr(), kDataBytes);
  const Addr ctr = l.counter_line_addr(0);
  EXPECT_GE(ctr, kDataBytes);
  const Addr n1 = l.tree_node_addr(1, 0);
  const Addr n2 = l.tree_node_addr(2, 0);
  EXPECT_GT(n1, ctr);
  EXPECT_GT(n2, n1);
  EXPECT_LE(l.end_of_memory(),
            kDataBytes + l.metadata_bytes() + kLineSize);
}

TEST(Layout, AdjacentLinesShareCounterLine) {
  const MetadataLayout l(SecurityParams::encrypt_only_ctr(64), kDataBytes);
  EXPECT_EQ(l.counter_line_addr(0), l.counter_line_addr(63 * kLineSize));
  EXPECT_NE(l.counter_line_addr(0), l.counter_line_addr(64 * kLineSize));
}

TEST(Layout, TreePathIsConsistent) {
  const MetadataLayout l(SecurityParams::baseline_tree_ctr(), kDataBytes);
  // Data lines covered by the same counter line share the whole path.
  for (unsigned level = 1; level <= l.tree_levels(); ++level) {
    EXPECT_EQ(l.tree_node_addr(level, 0),
              l.tree_node_addr(level, 63 * kLineSize));
  }
}

// ---------------------------------------------------------------- cache

TEST(MetadataCacheTest, LookupMissThenInstallHit) {
  MetadataCache mc(4096, 4);
  EXPECT_FALSE(mc.lookup(0x1000));
  mc.install(0x1000, false);
  EXPECT_TRUE(mc.lookup(0x1000));
  EXPECT_EQ(mc.accesses(), 2u);
  EXPECT_EQ(mc.misses(), 1u);
}

TEST(MetadataCacheTest, DirtyVictimSurfacesOnInstall) {
  MetadataCache mc(128, 2);  // 1 set, 2 ways
  mc.install(0, false);
  EXPECT_TRUE(mc.mark_dirty(0));
  mc.install(64, false);
  const auto v = mc.install(128, false);
  EXPECT_TRUE(v.evicted);
  EXPECT_TRUE(v.victim_dirty);
  EXPECT_EQ(v.victim_addr, 0u);
}

// ---------------------------------------------------------------- engine

TEST(Engine, XtsReadIssuesExactlyOneDramRead) {
  Rig rig(SecurityParams::encrypt_only_xts());
  rig.engine.start_read(0x1000, 1, 0);
  const auto ready = rig.drain();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(rig.engine.stats().data_reads, 1u);
  EXPECT_EQ(rig.engine.stats().meta_reads(), 0u);
  EXPECT_EQ(rig.dram.stats().reads_completed, 1u);
}

TEST(Engine, XtsReadLatencyIncludesAesLatency) {
  Rig rig(SecurityParams::encrypt_only_xts());
  rig.engine.start_read(0x1000, 1, 0);
  const auto ready = rig.drain();
  ASSERT_EQ(ready.size(), 1u);
  // AES latency (40 core cycles) beyond the raw DRAM completion.
  EXPECT_GE(ready[0].at, 40u);
}

TEST(Engine, CtrColdReadFetchesCounterLine) {
  Rig rig(SecurityParams::encrypt_only_ctr());
  rig.engine.start_read(0x1000, 1, 0);
  rig.drain();
  EXPECT_EQ(rig.engine.stats().counter_fetches, 1u);
  EXPECT_EQ(rig.dram.stats().reads_completed, 2u);  // data + counter
}

TEST(Engine, CtrWarmReadHitsCounterCache) {
  Rig rig(SecurityParams::encrypt_only_ctr());
  rig.engine.start_read(0x1000, 1, 0);
  rig.drain();
  // Second read of a line sharing the counter line: counter cached.
  rig.engine.start_read(0x1040, 2, rig.now);
  rig.drain();
  EXPECT_EQ(rig.engine.stats().counter_fetches, 1u);
  EXPECT_EQ(rig.dram.stats().reads_completed, 3u);
}

TEST(Engine, SecDdrAddsNoMetadataTrafficOverEncryptOnly) {
  // The paper's core claim in traffic terms: SecDDR+XTS == encrypt-only
  // XTS on the memory bus.
  Rig secddr(SecurityParams::secddr_xts());
  Rig enc(SecurityParams::encrypt_only_xts());
  for (int i = 0; i < 50; ++i) {
    secddr.engine.start_read(static_cast<Addr>(i) * 4096, i, 0);
    enc.engine.start_read(static_cast<Addr>(i) * 4096, i, 0);
  }
  secddr.drain();
  enc.drain();
  EXPECT_EQ(secddr.dram.stats().reads_completed,
            enc.dram.stats().reads_completed);
  EXPECT_EQ(secddr.engine.stats().meta_reads(), 0u);
}

TEST(Engine, TreeColdReadWalksToRoot) {
  Rig rig(SecurityParams::baseline_tree_ctr());
  rig.engine.start_read(0x2000, 1, 0);
  rig.drain();
  // Cold: counter + both stored levels fetched (root on-chip).
  EXPECT_EQ(rig.engine.stats().counter_fetches, 1u);
  EXPECT_EQ(rig.engine.stats().tree_node_fetches, 2u);
  EXPECT_EQ(rig.engine.stats().reads_with_tree_walk, 1u);
  EXPECT_EQ(rig.dram.stats().reads_completed, 4u);
}

TEST(Engine, TreeWalkTerminatesAtCachedNode) {
  Rig rig(SecurityParams::baseline_tree_ctr());
  rig.engine.start_read(0x2000, 1, 0);
  rig.drain();
  // A different counter line under the SAME L1 node: walk stops at L1.
  // Counter lines cover 64*64B = 4KB; L1 nodes cover 64 counter lines
  // = 256KB. 8KB away => same L1 node, different counter line.
  rig.engine.start_read(0x2000 + 8192, 2, rig.now);
  rig.drain();
  EXPECT_EQ(rig.engine.stats().counter_fetches, 2u);
  EXPECT_EQ(rig.engine.stats().tree_node_fetches, 2u)
      << "no additional node fetches: L1 hit terminates the walk";
}

TEST(Engine, TreeCachedCounterSkipsWalkEntirely) {
  Rig rig(SecurityParams::baseline_tree_ctr());
  rig.engine.start_read(0x2000, 1, 0);
  rig.drain();
  rig.engine.start_read(0x2040, 2, rig.now);  // same counter line
  rig.drain();
  EXPECT_EQ(rig.engine.stats().counter_fetches, 1u);
  EXPECT_EQ(rig.engine.stats().tree_node_fetches, 2u);
}

TEST(Engine, TreeWriteDirtiesEveryLevel) {
  Rig rig(SecurityParams::baseline_tree_ctr());
  rig.engine.start_write(0x3000, 0);
  rig.drain();
  // Write fetched counter + all levels (RMW) and issued the data write.
  EXPECT_EQ(rig.engine.stats().counter_fetches, 1u);
  EXPECT_EQ(rig.engine.stats().tree_node_fetches, 2u);
  EXPECT_EQ(rig.dram.stats().writes_completed, 1u);
  // Now evict the dirtied metadata by touching many distinct regions:
  // dirty writebacks must eventually reach DRAM. (128KB cache, 8-way.)
  for (int i = 0; i < 40000; ++i)
    rig.engine.start_read(static_cast<Addr>(i) * 4096, 100 + i, rig.now);
  rig.drain(20'000'000);
  EXPECT_GT(rig.engine.stats().meta_writebacks, 0u);
}

TEST(Engine, HashTreeReadFetchesMacLine) {
  Rig rig(SecurityParams::hash_tree8_xts());
  rig.engine.start_read(0x4000, 1, 0);
  rig.drain();
  EXPECT_EQ(rig.engine.stats().mac_line_fetches, 1u);
  EXPECT_GT(rig.engine.stats().tree_node_fetches, 3u);
}

TEST(Engine, AuthChannelAddsLatencyNotTraffic) {
  Rig inv(SecurityParams::invisimem(Encryption::kXts));
  Rig enc(SecurityParams::encrypt_only_xts());
  inv.engine.start_read(0x5000, 1, 0);
  enc.engine.start_read(0x5000, 1, 0);
  const auto r_inv = inv.drain();
  const auto r_enc = enc.drain();
  ASSERT_EQ(r_inv.size(), 1u);
  ASSERT_EQ(r_enc.size(), 1u);
  EXPECT_EQ(inv.dram.stats().reads_completed, 1u);
  // 2x MAC latency (80 cycles) dominates the XTS 40: +40 over enc-only.
  EXPECT_EQ(r_inv[0].at - r_enc[0].at, 40u);
}

TEST(Engine, SecDdrReadReadyAfterMacLatency) {
  Rig secddr(SecurityParams::secddr_xts());
  Rig enc(SecurityParams::encrypt_only_xts());
  secddr.engine.start_read(0x6000, 1, 0);
  enc.engine.start_read(0x6000, 1, 0);
  const auto r1 = secddr.drain();
  const auto r2 = enc.drain();
  ASSERT_EQ(r1.size(), 1u);
  // MAC verify (40) runs in parallel with XTS decrypt (40): same ready
  // time as encrypt-only — the <1% claim's latency half.
  EXPECT_EQ(r1[0].at, r2[0].at);
}

TEST(Engine, MetaArrivalStampsDramFinishNotTickTime) {
  // Metadata done times must come from the DRAM completion's finish
  // cycle (as the data path's data_done already does), so the verified
  // ready time cannot drift with how often the engine is ticked.
  const auto ready_at = [](Cycle step) {
    Rig rig(SecurityParams::encrypt_only_ctr());
    rig.engine.start_read(0x1000, 1, 0);
    std::vector<ReadReady> out;
    while (rig.engine.outstanding() > 0 && rig.now < 100000) {
      ++rig.now;
      rig.dram.tick_core_cycle();
      if (rig.now % step == 0) {
        rig.engine.tick(rig.now);
        for (const auto& r : rig.engine.ready()) out.push_back(r);
        rig.engine.ready().clear();
      }
    }
    EXPECT_EQ(out.size(), 1u);
    return out.empty() ? Cycle{0} : out[0].at;
  };
  const Cycle fine = ready_at(1);
  EXPECT_GT(fine, 0u);
  EXPECT_EQ(ready_at(7), fine);
  EXPECT_EQ(ready_at(13), fine);
}

TEST(Engine, SharedFetchesAreDeduplicated) {
  Rig rig(SecurityParams::encrypt_only_ctr());
  // Two reads under the same counter line, back to back.
  rig.engine.start_read(0x1000, 1, 0);
  rig.engine.start_read(0x1040, 2, 0);
  const auto ready = rig.drain();
  EXPECT_EQ(ready.size(), 2u);
  EXPECT_EQ(rig.engine.stats().counter_fetches, 1u)
      << "concurrent misses on one counter line must share the fetch";
}

}  // namespace
}  // namespace secddr::secmem
