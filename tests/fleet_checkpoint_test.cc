// Fleet checkpoint container + System save/restore (`fleet` label):
//
//  * corruption battery mirroring trace_codec's: every structural
//    violation of the container format must throw CheckpointFormatError
//    with the right path and byte offset — bad magic, version skew,
//    truncations at each structure, flipped CRCs and payload bytes,
//    oversized/reordered blocks, footer damage, trailing bytes, and a
//    config-hash mismatch;
//  * round-trip property: run a System partway, checkpoint, restore into
//    a FRESH System (freshly positioned traces), run both to completion
//    — the RunResults must be byte-identical to each other and to an
//    uninterrupted run, across channels x mem_threads x both loop modes.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fleet/checkpoint.h"
#include "fleet/node.h"
#include "secmem/params.h"
#include "sim/trace_codec.h"
#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr::fleet {
namespace {

namespace ck = checkpoint;

std::vector<std::uint8_t> sample_payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::uint8_t>(i * 7 + 3);
  return p;
}

/// Asserts decode throws with the expected offset and message fragment.
void expect_error(const std::vector<std::uint8_t>& bytes,
                  std::uint64_t offset, const std::string& fragment) {
  try {
    ck::decode(bytes.data(), bytes.size(), "test.ckpt", nullptr);
    FAIL() << "expected CheckpointFormatError(" << fragment << ")";
  } catch (const CheckpointFormatError& e) {
    EXPECT_EQ(e.path(), "test.ckpt") << e.what();
    EXPECT_EQ(e.offset(), offset) << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

/// Recomputes the header CRC after a deliberate header patch, so the
/// patched field (not the checksum) is what decode trips on.
void refresh_header_crc(std::vector<std::uint8_t>& bytes) {
  sim::trace_codec::put_u32(
      bytes.data() + 28, sim::trace_codec::crc32(bytes.data(), 28));
}

TEST(FleetCheckpointFormat, RoundTripsPayloadAndConfigHash) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{4097},
        ck::kBlockBytes + 177}) {
    SCOPED_TRACE(n);
    const std::vector<std::uint8_t> payload = sample_payload(n);
    const std::vector<std::uint8_t> bytes = ck::encode(0xfeedbeefcafe, payload);
    std::uint64_t hash = 0;
    EXPECT_EQ(ck::decode(bytes.data(), bytes.size(), "test.ckpt", &hash),
              payload);
    EXPECT_EQ(hash, 0xfeedbeefcafeull);
  }
}

TEST(FleetCheckpointFormat, CorruptionBattery) {
  const std::vector<std::uint8_t> payload = sample_payload(100);
  const std::vector<std::uint8_t> good = ck::encode(42, payload);
  const std::size_t foot = ck::kHeaderBytes + ck::kBlockHeaderBytes + 100;

  {  // control: the unmodified container decodes
    std::uint64_t hash = 0;
    EXPECT_EQ(ck::decode(good.data(), good.size(), "test.ckpt", &hash),
              payload);
    EXPECT_EQ(hash, 42u);
  }
  {  // truncated header
    std::vector<std::uint8_t> b(good.begin(), good.begin() + 16);
    expect_error(b, 0, "truncated header");
  }
  {  // bad magic
    std::vector<std::uint8_t> b = good;
    b[0] ^= 0xff;
    expect_error(b, 0, "bad magic");
  }
  {  // damaged header field -> checksum mismatch
    std::vector<std::uint8_t> b = good;
    b[20] ^= 0x01;  // inside config_hash
    expect_error(b, 28, "header checksum mismatch");
  }
  {  // version skew (header CRC re-fixed, so the version check fires)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + 8, ck::kVersion + 7);
    refresh_header_crc(b);
    expect_error(b, 8, "unsupported version 8");
  }
  {  // truncated block header
    std::vector<std::uint8_t> b(good.begin(),
                                good.begin() + ck::kHeaderBytes + 4);
    expect_error(b, ck::kHeaderBytes, "truncated block header");
  }
  {  // oversized payload_bytes (allocation guard)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + ck::kHeaderBytes,
                              ck::kMaxPayloadBytes + 1);
    expect_error(b, ck::kHeaderBytes, "oversized block");
  }
  {  // block index mismatch (reordered / replayed block)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + ck::kHeaderBytes + 4, 1);
    expect_error(b, ck::kHeaderBytes + 4, "block index mismatch");
  }
  {  // payload_bytes larger than what is actually present
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + ck::kHeaderBytes, 100000);
    expect_error(b, ck::kHeaderBytes, "truncated block payload");
  }
  {  // flipped CRC byte
    std::vector<std::uint8_t> b = good;
    b[ck::kHeaderBytes + 8] ^= 0x10;
    expect_error(b, ck::kHeaderBytes + 8, "block checksum mismatch");
  }
  {  // flipped payload byte
    std::vector<std::uint8_t> b = good;
    b[ck::kHeaderBytes + ck::kBlockHeaderBytes + 33] ^= 0x40;
    expect_error(b, ck::kHeaderBytes + 8, "block checksum mismatch");
  }
  {  // malformed footer (second word nonzero)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + foot + 4, 9);
    expect_error(b, foot + 4, "malformed footer");
  }
  {  // truncated footer (total field missing)
    std::vector<std::uint8_t> b(good.begin(),
                                good.begin() + static_cast<std::ptrdiff_t>(
                                                   foot + ck::kBlockHeaderBytes));
    expect_error(b, foot, "truncated footer");
  }
  {  // footer checksum mismatch
    std::vector<std::uint8_t> b = good;
    b[foot + ck::kBlockHeaderBytes] ^= 0x02;  // inside the total field
    expect_error(b, foot + 8, "footer checksum mismatch");
  }
  {  // footer total disagrees with the blocks (its own CRC re-fixed)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u64(b.data() + foot + ck::kBlockHeaderBytes, 99);
    sim::trace_codec::put_u32(
        b.data() + foot + 8,
        sim::trace_codec::crc32(b.data() + foot + ck::kBlockHeaderBytes,
                                ck::kFooterTotalBytes));
    expect_error(b, foot + ck::kBlockHeaderBytes,
                 "footer total disagrees with blocks");
  }
  {  // trailing bytes after the footer
    std::vector<std::uint8_t> b = good;
    b.push_back(0);
    expect_error(b, good.size(), "trailing bytes after footer");
  }
}

TEST(FleetCheckpointFormat, WriteFileIsAtomicAndReadable) {
  const std::string path = testing::TempDir() + "fleet_ckpt_atomic.ckpt";
  const std::vector<std::uint8_t> payload = sample_payload(4096);
  ck::write_file(path, 7, payload);
  // No tmp residue from the atomic rename.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::uint64_t hash = 0;
  EXPECT_EQ(ck::read_file(path, &hash), payload);
  EXPECT_EQ(hash, 7u);
  std::remove(path.c_str());
}

TEST(FleetCheckpointFormat, WriteFileObserverSeesOrderedDurabilityPoints) {
  // The WriteObserver seam must expose the real write pipeline: a torn
  // tmp prefix, the complete tmp before fsync, the fsync'd tmp before
  // rename, and the published path — in that order. The chaos harness
  // (fleet/chaos.h) injects crashes exactly here.
  struct Recorder : ck::WriteObserver {
    std::vector<std::string> calls;
    std::vector<long> sizes;
    static long file_size(const std::string& p) {
      std::FILE* f = std::fopen(p.c_str(), "rb");
      if (!f) return -1;
      std::fseek(f, 0, SEEK_END);
      const long n = std::ftell(f);
      std::fclose(f);
      return n;
    }
    void on_tmp_partial(const std::string& tmp) override {
      calls.push_back("partial");
      sizes.push_back(file_size(tmp));
    }
    void on_tmp_written(const std::string& tmp) override {
      calls.push_back("written");
      sizes.push_back(file_size(tmp));
    }
    void on_before_rename(const std::string& tmp) override {
      calls.push_back("rename");
      sizes.push_back(file_size(tmp));
    }
    void on_published(const std::string& path) override {
      calls.push_back("published");
      sizes.push_back(file_size(path));
    }
  };
  const std::string path = testing::TempDir() + "fleet_ckpt_observed.ckpt";
  std::remove(path.c_str());
  Recorder rec;
  ck::write_file(path, 3, sample_payload(5000), &rec);
  ASSERT_EQ(rec.calls, (std::vector<std::string>{"partial", "written",
                                                 "rename", "published"}));
  EXPECT_GT(rec.sizes[0], 0);
  EXPECT_LT(rec.sizes[0], rec.sizes[1]) << "on_tmp_partial saw a full file";
  EXPECT_EQ(rec.sizes[1], rec.sizes[2]);
  EXPECT_EQ(rec.sizes[2], rec.sizes[3]);
  std::uint64_t hash = 0;
  EXPECT_EQ(ck::read_file(path, &hash), sample_payload(5000));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Generational checkpoints.
// ---------------------------------------------------------------------------

TEST(FleetCheckpointGenerations, ListNextAndGcTrackTheFamily) {
  const std::string dir = testing::TempDir() + "fleet_gens";
  const std::string base = dir + "/n0.ckpt";
  const std::vector<const char*> names = {
      "n0.ckpt.1", "n0.ckpt.2",  "n0.ckpt.3", "n0.ckpt.7",
      "n0.ckpt.tmp", "n0.ckpt.7x", "n1.ckpt.9", "n0.ckpt"};
  for (const char* n : names) std::remove((dir + "/" + n).c_str());

  // Missing directory / no generations -> clean cold start.
  EXPECT_TRUE(ck::list_generations(base).empty());
  EXPECT_EQ(ck::next_generation(base), 1u);

  ASSERT_TRUE(::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST);
  for (const char* junk : names) {
    std::FILE* f = std::fopen((dir + "/" + junk).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputc('x', f);
    std::fclose(f);
  }

  // Only all-digit suffixes of THIS base count, ascending.
  std::vector<std::uint64_t> gens;
  for (const auto& g : ck::list_generations(base)) gens.push_back(g.gen);
  EXPECT_EQ(gens, (std::vector<std::uint64_t>{1, 2, 3, 7}));
  EXPECT_EQ(ck::next_generation(base), 8u);

  // GC keeps the newest `keep`, never touching neighbors.
  ck::gc_generations(base, 2);
  gens.clear();
  for (const auto& g : ck::list_generations(base)) gens.push_back(g.gen);
  EXPECT_EQ(gens, (std::vector<std::uint64_t>{3, 7}));
  EXPECT_TRUE(ck::list_generations(dir + "/n1.ckpt").size() == 1);
  std::FILE* f = std::fopen((dir + "/n0.ckpt.tmp").c_str(), "rb");
  EXPECT_NE(f, nullptr) << "gc deleted a non-generation file";
  if (f) std::fclose(f);

  ck::gc_generations(base, 1);
  ASSERT_EQ(ck::list_generations(base).size(), 1u);
  EXPECT_EQ(ck::list_generations(base)[0].gen, 7u);
  EXPECT_EQ(ck::generation_path(base, 7), base + ".7");
}

NodeConfig gen_node_config() {
  NodeConfig n;
  n.name = "mcf+gen";
  n.system.mem.cores = 2;
  n.system.security = secmem::SecurityParams::secddr_ctr();
  n.system.data_bytes = 4ull << 30;
  n.workload = "mcf";
  n.instructions = 800;
  n.warmup = 200;
  return n;
}

TEST(FleetCheckpointGenerations, RestoreFallsBackPastCorruptNewest) {
  const std::string dir = testing::TempDir() + "fleet_gen_fallback";
  ::mkdir(dir.c_str(), 0777);
  const std::string base = dir + "/node.ckpt";
  for (const auto& g : ck::list_generations(base))
    std::remove(g.path.c_str());

  const NodeConfig cfg = gen_node_config();
  Node a(cfg);
  ASSERT_TRUE(a.step(600));
  a.checkpoint_to_file(ck::generation_path(base, 1));
  ASSERT_TRUE(a.step(600));
  a.checkpoint_to_file(ck::generation_path(base, 2));

  // Newest generation corrupted: restore must fall back to gen 1 and
  // the completed run must still be bit-identical to the uninterrupted
  // one.
  {
    std::FILE* f = std::fopen(ck::generation_path(base, 2).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 48, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 48, SEEK_SET);
    std::fputc((c == EOF ? 0 : c) ^ 0x40, f);
    std::fclose(f);
  }
  Node b(cfg);
  EXPECT_EQ(b.restore_latest(base), 1u);
  while (!a.finished()) a.step(100000);
  while (!b.finished()) b.step(100000);
  EXPECT_EQ(ck::encode_result(b.result()), ck::encode_result(a.result()));

  // Both generations corrupt: a distinct, attributable error — silently
  // restarting from zero would fabricate history.
  {
    std::FILE* f = std::fopen(ck::generation_path(base, 1).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 48, SEEK_SET);
    std::fputc(0x5a, f);
    std::fclose(f);
  }
  Node c(cfg);
  try {
    c.restore_latest(base);
    FAIL() << "all-corrupt generations must throw";
  } catch (const CheckpointUnrecoverableError& e) {
    EXPECT_EQ(e.base(), base);
    EXPECT_EQ(e.generations(), 2u);
    EXPECT_NE(std::string(e.what()).find("unrecoverable"), std::string::npos);
  }

  // An empty family is a cold start, not an error.
  for (const auto& g : ck::list_generations(base))
    std::remove(g.path.c_str());
  Node d(cfg);
  EXPECT_EQ(d.restore_latest(base), 0u);
}

// ---------------------------------------------------------------------------
// System-level checkpoint/restore.
// ---------------------------------------------------------------------------

sim::SystemConfig small_config(unsigned channels, unsigned mem_threads,
                               bool event_driven) {
  sim::SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = secmem::SecurityParams::secddr_ctr();
  cfg.geometry.channels = channels;
  cfg.data_bytes = 4ull << 30;  // two cores at 2GB trace stride
  cfg.event_driven = event_driven;
  cfg.mem_threads = mem_threads;
  return cfg;
}

struct LiveSystem {
  std::vector<std::unique_ptr<workloads::SyntheticTrace>> traces;
  std::unique_ptr<sim::System> sys;
};

LiveSystem make_system(const workloads::WorkloadDesc& desc,
                       const sim::SystemConfig& cfg) {
  LiveSystem s;
  std::vector<sim::TraceSource*> ptrs;
  for (unsigned c = 0; c < cfg.mem.cores; ++c) {
    s.traces.push_back(std::make_unique<workloads::SyntheticTrace>(desc, c));
    ptrs.push_back(s.traces.back().get());
  }
  s.sys = std::make_unique<sim::System>(cfg, ptrs);
  return s;
}

TEST(FleetSystemCheckpoint, MidRunRestoreIsBitIdenticalAcrossConfigs) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  for (const unsigned channels : {1u, 2u, 4u}) {
    for (const unsigned mem_threads : {1u, 4u}) {
      for (const bool event_driven : {false, true}) {
        SCOPED_TRACE(std::to_string(channels) + "ch/mem_threads=" +
                     std::to_string(mem_threads) + "/event_driven=" +
                     std::to_string(event_driven));
        const sim::SystemConfig cfg =
            small_config(channels, mem_threads, event_driven);

        // Uninterrupted reference.
        LiveSystem ref = make_system(*desc, cfg);
        const std::vector<std::uint8_t> ref_bytes = ck::encode_result(
            ref.sys->run(1200, 2'000'000'000, /*warmup=*/400));

        // Interrupted run: checkpoint mid-flight (a budget that lands
        // inside the warmup or early measured phase), restore into a
        // FRESH System, finish both, compare all three byte-for-byte.
        LiveSystem a = make_system(*desc, cfg);
        a.sys->begin(1200, 2'000'000'000, /*warmup=*/400);
        ASSERT_TRUE(a.sys->step(1500)) << "budget larger than the whole run";
        const std::vector<std::uint8_t> image = ck::encode_system(*a.sys);

        LiveSystem b = make_system(*desc, cfg);
        b.sys->begin(1200, 2'000'000'000, /*warmup=*/400);
        ck::decode_system(*b.sys, image.data(), image.size(), "mid.ckpt");

        while (a.sys->step(kNoEvent)) {
        }
        while (b.sys->step(kNoEvent)) {
        }
        EXPECT_EQ(ck::encode_result(a.sys->result()), ref_bytes);
        EXPECT_EQ(ck::encode_result(b.sys->result()), ref_bytes);
      }
    }
  }
}

TEST(FleetSystemCheckpoint, MidRunRestoreRoundTripsThermalState) {
  // Power accounting + both thermal policies enabled: the checkpoint
  // carries the remap table, in-window command counts, fixed-point rank
  // temperatures, and throttle engagement. A mid-run restore must finish
  // bit-identically to the uninterrupted run — across both loop modes
  // and a threaded multi-channel backend (encode_result covers the power
  // reports, so temperature trajectories are compared too).
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  dram::PowerConfig power;
  power.enabled = true;
  power.window_cycles = 256;
  power.thermal.c_nj_per_k = 500;  // fast node: policies act inside the run
  power.throttle = true;
  power.trip_mc = 46'500;
  power.release_mc = 46'200;
  power.remap = true;
  power.remap_delta_mc = 100;
  power.remap_min_windows = 2;
  for (const unsigned channels : {1u, 2u}) {
    for (const unsigned mem_threads : {1u, 2u}) {
      for (const bool event_driven : {false, true}) {
        SCOPED_TRACE(std::to_string(channels) + "ch/mem_threads=" +
                     std::to_string(mem_threads) + "/event_driven=" +
                     std::to_string(event_driven));
        sim::SystemConfig cfg =
            small_config(channels, mem_threads, event_driven);
        cfg.power = power;

        LiveSystem ref = make_system(*desc, cfg);
        const std::vector<std::uint8_t> ref_bytes = ck::encode_result(
            ref.sys->run(1200, 2'000'000'000, /*warmup=*/400));

        LiveSystem a = make_system(*desc, cfg);
        a.sys->begin(1200, 2'000'000'000, /*warmup=*/400);
        ASSERT_TRUE(a.sys->step(1500)) << "budget larger than the whole run";
        const std::vector<std::uint8_t> image = ck::encode_system(*a.sys);

        LiveSystem b = make_system(*desc, cfg);
        b.sys->begin(1200, 2'000'000'000, /*warmup=*/400);
        ck::decode_system(*b.sys, image.data(), image.size(), "thermal.ckpt");
        while (a.sys->step(kNoEvent)) {
        }
        while (b.sys->step(kNoEvent)) {
        }
        EXPECT_EQ(ck::encode_result(a.sys->result()), ref_bytes);
        EXPECT_EQ(ck::encode_result(b.sys->result()), ref_bytes);

        // A power-enabled config hashes differently from the default, so
        // this checkpoint cannot restore into a power-off System.
        LiveSystem plain =
            make_system(*desc, small_config(channels, 1, event_driven));
        plain.sys->begin(1200, 2'000'000'000, /*warmup=*/400);
        EXPECT_THROW(ck::decode_system(*plain.sys, image.data(), image.size(),
                                       "thermal.ckpt"),
                     CheckpointFormatError);
      }
    }
  }
}

TEST(FleetSystemCheckpoint, RestoreCrossesLoopModeAndThreadCount) {
  // config_hash() excludes the execution knobs, so a checkpoint written
  // by the serial per-cycle loop must restore into an event-driven
  // epoch-threaded System — and still finish bit-identically.
  const auto* desc = workloads::find("lbm");
  ASSERT_NE(desc, nullptr);
  LiveSystem writer =
      make_system(*desc, small_config(2, 1, /*event_driven=*/false));
  writer.sys->begin(1000, 2'000'000'000, /*warmup=*/300);
  ASSERT_TRUE(writer.sys->step(900));
  const std::vector<std::uint8_t> image = ck::encode_system(*writer.sys);
  while (writer.sys->step(kNoEvent)) {
  }

  LiveSystem reader =
      make_system(*desc, small_config(2, 2, /*event_driven=*/true));
  reader.sys->begin(1000, 2'000'000'000, /*warmup=*/300);
  ck::decode_system(*reader.sys, image.data(), image.size(), "cross.ckpt");
  while (reader.sys->step(kNoEvent)) {
  }
  EXPECT_EQ(ck::encode_result(reader.sys->result()),
            ck::encode_result(writer.sys->result()));
}

TEST(FleetSystemCheckpoint, ConfigHashMismatchIsRejectedAtOffset16) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  LiveSystem writer =
      make_system(*desc, small_config(1, 1, /*event_driven=*/true));
  writer.sys->begin(600, 2'000'000'000, /*warmup=*/200);
  ASSERT_TRUE(writer.sys->step(500));
  const std::vector<std::uint8_t> image = ck::encode_system(*writer.sys);

  // A different security configuration is a different config hash.
  sim::SystemConfig other = small_config(1, 1, /*event_driven=*/true);
  other.security = secmem::SecurityParams::baseline_tree_ctr();
  LiveSystem reader = make_system(*desc, other);
  reader.sys->begin(600, 2'000'000'000, /*warmup=*/200);
  try {
    ck::decode_system(*reader.sys, image.data(), image.size(), "wrong.ckpt");
    FAIL() << "config-hash mismatch must throw";
  } catch (const CheckpointFormatError& e) {
    EXPECT_EQ(e.offset(), 16u) << e.what();
    EXPECT_NE(std::string(e.what()).find("different simulation configuration"),
              std::string::npos)
        << e.what();
  }

  // Execution-equivalent knobs (loop mode, threads) hash identically.
  EXPECT_EQ(writer.sys->config_hash(),
            make_system(*desc, small_config(1, 4, /*event_driven=*/false))
                .sys->config_hash());
  EXPECT_NE(writer.sys->config_hash(), reader.sys->config_hash());
}

TEST(FleetSystemCheckpoint, TruncatedSystemPayloadReportsOffset) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  LiveSystem writer =
      make_system(*desc, small_config(1, 1, /*event_driven=*/true));
  writer.sys->begin(600, 2'000'000'000, /*warmup=*/200);
  ASSERT_TRUE(writer.sys->step(500));
  serial::Sink s;
  writer.sys->save(s);
  std::vector<std::uint8_t> payload = s.take();
  payload.resize(payload.size() / 2);  // cut the state mid-stream
  const std::vector<std::uint8_t> image =
      ck::encode(writer.sys->config_hash(), payload);

  LiveSystem reader =
      make_system(*desc, small_config(1, 1, /*event_driven=*/true));
  reader.sys->begin(600, 2'000'000'000, /*warmup=*/200);
  try {
    ck::decode_system(*reader.sys, image.data(), image.size(), "cut.ckpt");
    FAIL() << "truncated system payload must throw";
  } catch (const CheckpointFormatError& e) {
    EXPECT_EQ(e.path(), "cut.ckpt");
    // The offset points into the (container-framed) payload, past the
    // header and at or before the truncation point.
    EXPECT_GE(e.offset(), ck::kHeaderBytes);
    EXPECT_LE(e.offset(), ck::kHeaderBytes + payload.size());
  }
}

}  // namespace
}  // namespace secddr::fleet
