// Fleet checkpoint container + System save/restore (`fleet` label):
//
//  * corruption battery mirroring trace_codec's: every structural
//    violation of the container format must throw CheckpointFormatError
//    with the right path and byte offset — bad magic, version skew,
//    truncations at each structure, flipped CRCs and payload bytes,
//    oversized/reordered blocks, footer damage, trailing bytes, and a
//    config-hash mismatch;
//  * round-trip property: run a System partway, checkpoint, restore into
//    a FRESH System (freshly positioned traces), run both to completion
//    — the RunResults must be byte-identical to each other and to an
//    uninterrupted run, across channels x mem_threads x both loop modes.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fleet/checkpoint.h"
#include "secmem/params.h"
#include "sim/trace_codec.h"
#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr::fleet {
namespace {

namespace ck = checkpoint;

std::vector<std::uint8_t> sample_payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::uint8_t>(i * 7 + 3);
  return p;
}

/// Asserts decode throws with the expected offset and message fragment.
void expect_error(const std::vector<std::uint8_t>& bytes,
                  std::uint64_t offset, const std::string& fragment) {
  try {
    ck::decode(bytes.data(), bytes.size(), "test.ckpt", nullptr);
    FAIL() << "expected CheckpointFormatError(" << fragment << ")";
  } catch (const CheckpointFormatError& e) {
    EXPECT_EQ(e.path(), "test.ckpt") << e.what();
    EXPECT_EQ(e.offset(), offset) << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

/// Recomputes the header CRC after a deliberate header patch, so the
/// patched field (not the checksum) is what decode trips on.
void refresh_header_crc(std::vector<std::uint8_t>& bytes) {
  sim::trace_codec::put_u32(
      bytes.data() + 28, sim::trace_codec::crc32(bytes.data(), 28));
}

TEST(FleetCheckpointFormat, RoundTripsPayloadAndConfigHash) {
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{4097},
        ck::kBlockBytes + 177}) {
    SCOPED_TRACE(n);
    const std::vector<std::uint8_t> payload = sample_payload(n);
    const std::vector<std::uint8_t> bytes = ck::encode(0xfeedbeefcafe, payload);
    std::uint64_t hash = 0;
    EXPECT_EQ(ck::decode(bytes.data(), bytes.size(), "test.ckpt", &hash),
              payload);
    EXPECT_EQ(hash, 0xfeedbeefcafeull);
  }
}

TEST(FleetCheckpointFormat, CorruptionBattery) {
  const std::vector<std::uint8_t> payload = sample_payload(100);
  const std::vector<std::uint8_t> good = ck::encode(42, payload);
  const std::size_t foot = ck::kHeaderBytes + ck::kBlockHeaderBytes + 100;

  {  // control: the unmodified container decodes
    std::uint64_t hash = 0;
    EXPECT_EQ(ck::decode(good.data(), good.size(), "test.ckpt", &hash),
              payload);
    EXPECT_EQ(hash, 42u);
  }
  {  // truncated header
    std::vector<std::uint8_t> b(good.begin(), good.begin() + 16);
    expect_error(b, 0, "truncated header");
  }
  {  // bad magic
    std::vector<std::uint8_t> b = good;
    b[0] ^= 0xff;
    expect_error(b, 0, "bad magic");
  }
  {  // damaged header field -> checksum mismatch
    std::vector<std::uint8_t> b = good;
    b[20] ^= 0x01;  // inside config_hash
    expect_error(b, 28, "header checksum mismatch");
  }
  {  // version skew (header CRC re-fixed, so the version check fires)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + 8, ck::kVersion + 7);
    refresh_header_crc(b);
    expect_error(b, 8, "unsupported version 8");
  }
  {  // truncated block header
    std::vector<std::uint8_t> b(good.begin(),
                                good.begin() + ck::kHeaderBytes + 4);
    expect_error(b, ck::kHeaderBytes, "truncated block header");
  }
  {  // oversized payload_bytes (allocation guard)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + ck::kHeaderBytes,
                              ck::kMaxPayloadBytes + 1);
    expect_error(b, ck::kHeaderBytes, "oversized block");
  }
  {  // block index mismatch (reordered / replayed block)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + ck::kHeaderBytes + 4, 1);
    expect_error(b, ck::kHeaderBytes + 4, "block index mismatch");
  }
  {  // payload_bytes larger than what is actually present
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + ck::kHeaderBytes, 100000);
    expect_error(b, ck::kHeaderBytes, "truncated block payload");
  }
  {  // flipped CRC byte
    std::vector<std::uint8_t> b = good;
    b[ck::kHeaderBytes + 8] ^= 0x10;
    expect_error(b, ck::kHeaderBytes + 8, "block checksum mismatch");
  }
  {  // flipped payload byte
    std::vector<std::uint8_t> b = good;
    b[ck::kHeaderBytes + ck::kBlockHeaderBytes + 33] ^= 0x40;
    expect_error(b, ck::kHeaderBytes + 8, "block checksum mismatch");
  }
  {  // malformed footer (second word nonzero)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u32(b.data() + foot + 4, 9);
    expect_error(b, foot + 4, "malformed footer");
  }
  {  // truncated footer (total field missing)
    std::vector<std::uint8_t> b(good.begin(),
                                good.begin() + static_cast<std::ptrdiff_t>(
                                                   foot + ck::kBlockHeaderBytes));
    expect_error(b, foot, "truncated footer");
  }
  {  // footer checksum mismatch
    std::vector<std::uint8_t> b = good;
    b[foot + ck::kBlockHeaderBytes] ^= 0x02;  // inside the total field
    expect_error(b, foot + 8, "footer checksum mismatch");
  }
  {  // footer total disagrees with the blocks (its own CRC re-fixed)
    std::vector<std::uint8_t> b = good;
    sim::trace_codec::put_u64(b.data() + foot + ck::kBlockHeaderBytes, 99);
    sim::trace_codec::put_u32(
        b.data() + foot + 8,
        sim::trace_codec::crc32(b.data() + foot + ck::kBlockHeaderBytes,
                                ck::kFooterTotalBytes));
    expect_error(b, foot + ck::kBlockHeaderBytes,
                 "footer total disagrees with blocks");
  }
  {  // trailing bytes after the footer
    std::vector<std::uint8_t> b = good;
    b.push_back(0);
    expect_error(b, good.size(), "trailing bytes after footer");
  }
}

TEST(FleetCheckpointFormat, WriteFileIsAtomicAndReadable) {
  const std::string path = testing::TempDir() + "fleet_ckpt_atomic.ckpt";
  const std::vector<std::uint8_t> payload = sample_payload(4096);
  ck::write_file(path, 7, payload);
  // No tmp residue from the atomic rename.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::uint64_t hash = 0;
  EXPECT_EQ(ck::read_file(path, &hash), payload);
  EXPECT_EQ(hash, 7u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// System-level checkpoint/restore.
// ---------------------------------------------------------------------------

sim::SystemConfig small_config(unsigned channels, unsigned mem_threads,
                               bool event_driven) {
  sim::SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = secmem::SecurityParams::secddr_ctr();
  cfg.geometry.channels = channels;
  cfg.data_bytes = 4ull << 30;  // two cores at 2GB trace stride
  cfg.event_driven = event_driven;
  cfg.mem_threads = mem_threads;
  return cfg;
}

struct LiveSystem {
  std::vector<std::unique_ptr<workloads::SyntheticTrace>> traces;
  std::unique_ptr<sim::System> sys;
};

LiveSystem make_system(const workloads::WorkloadDesc& desc,
                       const sim::SystemConfig& cfg) {
  LiveSystem s;
  std::vector<sim::TraceSource*> ptrs;
  for (unsigned c = 0; c < cfg.mem.cores; ++c) {
    s.traces.push_back(std::make_unique<workloads::SyntheticTrace>(desc, c));
    ptrs.push_back(s.traces.back().get());
  }
  s.sys = std::make_unique<sim::System>(cfg, ptrs);
  return s;
}

TEST(FleetSystemCheckpoint, MidRunRestoreIsBitIdenticalAcrossConfigs) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  for (const unsigned channels : {1u, 2u, 4u}) {
    for (const unsigned mem_threads : {1u, 4u}) {
      for (const bool event_driven : {false, true}) {
        SCOPED_TRACE(std::to_string(channels) + "ch/mem_threads=" +
                     std::to_string(mem_threads) + "/event_driven=" +
                     std::to_string(event_driven));
        const sim::SystemConfig cfg =
            small_config(channels, mem_threads, event_driven);

        // Uninterrupted reference.
        LiveSystem ref = make_system(*desc, cfg);
        const std::vector<std::uint8_t> ref_bytes = ck::encode_result(
            ref.sys->run(1200, 2'000'000'000, /*warmup=*/400));

        // Interrupted run: checkpoint mid-flight (a budget that lands
        // inside the warmup or early measured phase), restore into a
        // FRESH System, finish both, compare all three byte-for-byte.
        LiveSystem a = make_system(*desc, cfg);
        a.sys->begin(1200, 2'000'000'000, /*warmup=*/400);
        ASSERT_TRUE(a.sys->step(1500)) << "budget larger than the whole run";
        const std::vector<std::uint8_t> image = ck::encode_system(*a.sys);

        LiveSystem b = make_system(*desc, cfg);
        b.sys->begin(1200, 2'000'000'000, /*warmup=*/400);
        ck::decode_system(*b.sys, image.data(), image.size(), "mid.ckpt");

        while (a.sys->step(kNoEvent)) {
        }
        while (b.sys->step(kNoEvent)) {
        }
        EXPECT_EQ(ck::encode_result(a.sys->result()), ref_bytes);
        EXPECT_EQ(ck::encode_result(b.sys->result()), ref_bytes);
      }
    }
  }
}

TEST(FleetSystemCheckpoint, RestoreCrossesLoopModeAndThreadCount) {
  // config_hash() excludes the execution knobs, so a checkpoint written
  // by the serial per-cycle loop must restore into an event-driven
  // epoch-threaded System — and still finish bit-identically.
  const auto* desc = workloads::find("lbm");
  ASSERT_NE(desc, nullptr);
  LiveSystem writer =
      make_system(*desc, small_config(2, 1, /*event_driven=*/false));
  writer.sys->begin(1000, 2'000'000'000, /*warmup=*/300);
  ASSERT_TRUE(writer.sys->step(900));
  const std::vector<std::uint8_t> image = ck::encode_system(*writer.sys);
  while (writer.sys->step(kNoEvent)) {
  }

  LiveSystem reader =
      make_system(*desc, small_config(2, 2, /*event_driven=*/true));
  reader.sys->begin(1000, 2'000'000'000, /*warmup=*/300);
  ck::decode_system(*reader.sys, image.data(), image.size(), "cross.ckpt");
  while (reader.sys->step(kNoEvent)) {
  }
  EXPECT_EQ(ck::encode_result(reader.sys->result()),
            ck::encode_result(writer.sys->result()));
}

TEST(FleetSystemCheckpoint, ConfigHashMismatchIsRejectedAtOffset16) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  LiveSystem writer =
      make_system(*desc, small_config(1, 1, /*event_driven=*/true));
  writer.sys->begin(600, 2'000'000'000, /*warmup=*/200);
  ASSERT_TRUE(writer.sys->step(500));
  const std::vector<std::uint8_t> image = ck::encode_system(*writer.sys);

  // A different security configuration is a different config hash.
  sim::SystemConfig other = small_config(1, 1, /*event_driven=*/true);
  other.security = secmem::SecurityParams::baseline_tree_ctr();
  LiveSystem reader = make_system(*desc, other);
  reader.sys->begin(600, 2'000'000'000, /*warmup=*/200);
  try {
    ck::decode_system(*reader.sys, image.data(), image.size(), "wrong.ckpt");
    FAIL() << "config-hash mismatch must throw";
  } catch (const CheckpointFormatError& e) {
    EXPECT_EQ(e.offset(), 16u) << e.what();
    EXPECT_NE(std::string(e.what()).find("different simulation configuration"),
              std::string::npos)
        << e.what();
  }

  // Execution-equivalent knobs (loop mode, threads) hash identically.
  EXPECT_EQ(writer.sys->config_hash(),
            make_system(*desc, small_config(1, 4, /*event_driven=*/false))
                .sys->config_hash());
  EXPECT_NE(writer.sys->config_hash(), reader.sys->config_hash());
}

TEST(FleetSystemCheckpoint, TruncatedSystemPayloadReportsOffset) {
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  LiveSystem writer =
      make_system(*desc, small_config(1, 1, /*event_driven=*/true));
  writer.sys->begin(600, 2'000'000'000, /*warmup=*/200);
  ASSERT_TRUE(writer.sys->step(500));
  serial::Sink s;
  writer.sys->save(s);
  std::vector<std::uint8_t> payload = s.take();
  payload.resize(payload.size() / 2);  // cut the state mid-stream
  const std::vector<std::uint8_t> image =
      ck::encode(writer.sys->config_hash(), payload);

  LiveSystem reader =
      make_system(*desc, small_config(1, 1, /*event_driven=*/true));
  reader.sys->begin(600, 2'000'000'000, /*warmup=*/200);
  try {
    ck::decode_system(*reader.sys, image.data(), image.size(), "cut.ckpt");
    FAIL() << "truncated system payload must throw";
  } catch (const CheckpointFormatError& e) {
    EXPECT_EQ(e.path(), "cut.ckpt");
    // The offset points into the (container-framed) payload, past the
    // header and at or before the truncation point.
    EXPECT_GE(e.offset(), ck::kHeaderBytes);
    EXPECT_LE(e.offset(), ck::kHeaderBytes + payload.size());
  }
}

}  // namespace
}  // namespace secddr::fleet
