// Trace subsystem battery: binary codec round-trips (randomized property
// over record counts and block sizes, edge gap/addr values, loop mode,
// empty traces), the corruption battery (every structural violation must
// throw a distinct TraceFormatError carrying path + offset, and never
// crash — ci.sh runs this under ASan/UBSan), open_trace format dispatch,
// and the bounded-memory guarantee on a 10M-record stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/file_trace.h"
#include "sim/stream_trace.h"
#include "sim/trace_codec.h"

namespace secddr::sim {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void write_binary(const std::string& path,
                  const std::vector<TraceRecord>& records,
                  std::uint32_t block_records) {
  TraceWriter w(path, block_records);
  for (const auto& r : records) w.append(r);
  w.close();
}

/// Reads the whole trace through StreamFileTrace (prefetch thread on).
std::vector<TraceRecord> read_stream(const std::string& path,
                                     bool loop = false,
                                     std::size_t max_records = ~std::size_t{0}) {
  StreamFileTrace t(path, loop);
  std::vector<TraceRecord> out;
  TraceRecord r;
  while (out.size() < max_records && t.next(r)) out.push_back(r);
  return out;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  ASSERT_EQ(std::fclose(f), 0);
}

void expect_records_equal(const std::vector<TraceRecord>& got,
                          const std::vector<TraceRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].gap, want[i].gap) << "record " << i;
    ASSERT_EQ(got[i].is_write, want[i].is_write) << "record " << i;
    ASSERT_EQ(got[i].addr, want[i].addr) << "record " << i;
  }
}

// ------------------------------------------------------------ round trip

TEST(TraceCodec, VarintRoundTrip) {
  const std::uint64_t values[] = {0,       1,       127,        128,
                                  16383,   16384,   0xFFFFFFFF, 1ull << 62,
                                  ~0ull - 1, ~0ull};
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v : values) trace_codec::put_varint(buf, v);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  for (std::uint64_t v : values)
    EXPECT_EQ(trace_codec::get_varint(&p, end, "mem", 0), v);
  EXPECT_EQ(p, end);
}

TEST(TraceCodec, EdgeValueRecordsRoundTrip) {
  // Extreme gaps, extreme and descending addresses (negative deltas),
  // and the all-bits patterns.
  const std::vector<TraceRecord> records = {
      {0, false, 0},
      {0xFFFFFFFFu, true, ~0ull},
      {1, false, 0},                  // delta = -max
      {42, true, 1ull << 63},
      {7, false, (1ull << 63) - 64},  // small negative delta
      {0, true, 0x123456789ABCDEFull},
  };
  const std::string path = temp_path("edge.strace");
  for (std::uint32_t block : {1u, 2u, 4096u}) {
    write_binary(path, records, block);
    expect_records_equal(read_stream(path), records);
  }
}

TEST(TraceCodec, EmptyTraceRoundTrip) {
  const std::string path = temp_path("empty.strace");
  write_binary(path, {}, 64);
  EXPECT_TRUE(read_stream(path).empty());
  // Loop mode on an empty trace must terminate, not spin.
  EXPECT_TRUE(read_stream(path, /*loop=*/true).empty());
}

TEST(TraceCodec, RoundTripProperty) {
  // Randomized vectors across sizes and block geometries; gap/addr drawn
  // from edge-heavy distributions.
  std::mt19937_64 rng(0xc0dec);
  auto random_records = [&](std::size_t n) {
    std::vector<TraceRecord> v;
    v.reserve(n);
    Addr addr = 0;
    for (std::size_t i = 0; i < n; ++i) {
      TraceRecord r;
      switch (rng() % 4) {
        case 0: r.gap = static_cast<std::uint32_t>(rng()); break;
        case 1: r.gap = 0xFFFFFFFFu; break;
        default: r.gap = static_cast<std::uint32_t>(rng() % 600);
      }
      r.is_write = (rng() & 1) != 0;
      switch (rng() % 4) {
        case 0: addr = rng(); break;                    // wild jump
        case 1: addr += 64; break;                      // stream
        case 2: addr -= (rng() % 4096); break;          // descending
        default: addr += (rng() % (1u << 20));          // local jump
      }
      r.addr = addr;
      v.push_back(r);
    }
    return v;
  };
  const std::string path = temp_path("property.strace");
  const std::size_t sizes[] = {0, 1, 2, 63, 64, 65, 1000, 100000, 1000000};
  const std::uint32_t blocks[] = {1, 3, 64, 4096};
  for (std::size_t n : sizes) {
    const auto records = random_records(n);
    // Cycle block sizes; run every block size for the small cases, one
    // (rotating) choice for the big ones to keep the test fast.
    const std::size_t nblocks = n <= 1000 ? std::size(blocks) : 1;
    for (std::size_t bi = 0; bi < nblocks; ++bi) {
      const std::uint32_t block =
          blocks[(bi + n) % std::size(blocks)];
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " block=" + std::to_string(block));
      write_binary(path, records, block);
      expect_records_equal(read_stream(path), records);
    }
  }
}

TEST(TraceCodec, LoopModeRewindsToFirstBlock) {
  std::vector<TraceRecord> records;
  for (std::uint32_t i = 0; i < 10; ++i)
    records.push_back({i, (i % 3) == 0, 0x1000ull * i});
  const std::string path = temp_path("loop.strace");
  write_binary(path, records, /*block_records=*/4);  // 3 blocks: 4+4+2
  const auto got = read_stream(path, /*loop=*/true, /*max_records=*/25);
  ASSERT_EQ(got.size(), 25u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto& want = records[i % records.size()];
    EXPECT_EQ(got[i].gap, want.gap) << i;
    EXPECT_EQ(got[i].is_write, want.is_write) << i;
    EXPECT_EQ(got[i].addr, want.addr) << i;
  }
}

TEST(TraceCodec, RecordTraceCapsAndCounts) {
  VectorTrace src({{1, false, 0x40}, {2, true, 0x80}, {3, false, 0xC0}});
  const std::string path = temp_path("capped.strace");
  EXPECT_EQ(record_trace(src, path, 2), 2u);
  const auto got = read_stream(path);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].addr, 0x80u);
}

TEST(TraceCodec, WriterRecordsWrittenTracksTailBuffer) {
  const std::string path = temp_path("count.strace");
  TraceWriter w(path, 8);
  for (int i = 0; i < 11; ++i) {
    EXPECT_EQ(w.records_written(), static_cast<std::uint64_t>(i));
    w.append({0, false, static_cast<Addr>(i)});
  }
  w.close();
  EXPECT_EQ(w.records_written(), 11u);
}

TEST(TraceCodec, BlockRecordsClampedToSafeRange) {
  // 0 and huge block_records must both clamp (the upper clamp is what
  // keeps a worst-case block under the u32 payload field and the
  // reader's allocation guard) and still round-trip.
  const std::vector<TraceRecord> records = {{1, false, 0x40}, {2, true, 0x80}};
  const std::string path = temp_path("clamp.strace");
  for (std::uint32_t block : {0u, 0xFFFFFFFFu}) {
    write_binary(path, records, block);
    expect_records_equal(read_stream(path), records);
  }
}

// ------------------------------------------------------------ dispatch

TEST(OpenTrace, DispatchesOnMagic) {
  const std::vector<TraceRecord> records = {{5, false, 0x40}, {0, true, 0x80}};
  const std::string text = temp_path("dispatch.txt");
  const std::string binary = temp_path("dispatch.strace");
  ASSERT_TRUE(write_trace_file(text, records));
  write_binary(binary, records, 64);

  EXPECT_FALSE(is_binary_trace(text));
  EXPECT_TRUE(is_binary_trace(binary));
  for (const std::string& path : {text, binary}) {
    auto src = open_trace(path);
    std::vector<TraceRecord> got;
    TraceRecord r;
    while (src->next(r)) got.push_back(r);
    expect_records_equal(got, records);
  }
  EXPECT_NE(dynamic_cast<StreamFileTrace*>(open_trace(binary).get()), nullptr);
  EXPECT_NE(dynamic_cast<FileTrace*>(open_trace(text).get()), nullptr);
  EXPECT_THROW(open_trace(temp_path("nonexistent.strace")),
               std::runtime_error);
  // The fallback probe: missing -> nullptr, present-but-corrupt -> throw.
  EXPECT_EQ(open_trace_if_present(temp_path("nonexistent.strace")), nullptr);
  EXPECT_NE(open_trace_if_present(binary), nullptr);
  auto corrupt = read_file(binary);
  corrupt.resize(10);
  write_file(binary, corrupt);
  EXPECT_THROW(open_trace_if_present(binary), TraceFormatError);
}

// ------------------------------------------------------------ corruption

/// Makes a small valid trace file and returns its bytes.
std::vector<std::uint8_t> valid_file_bytes(const std::string& path,
                                           std::size_t n_records = 200,
                                           std::uint32_t block = 32) {
  std::vector<TraceRecord> records;
  Xoshiro256 rng(99);
  Addr addr = 0;
  for (std::size_t i = 0; i < n_records; ++i) {
    addr += rng.next() % (1u << 16);
    records.push_back({static_cast<std::uint32_t>(rng.next() % 100),
                       rng.chance(0.4), addr});
  }
  write_binary(path, records, block);
  return read_file(path);
}

/// Expects reading `bytes` (written to a temp file) to throw a
/// TraceFormatError whose message contains the path, the word "offset",
/// and `phrase`.
void expect_format_error(const std::vector<std::uint8_t>& bytes,
                         const std::string& phrase,
                         const char* tag) {
  const std::string path = temp_path(std::string("corrupt_") + tag + ".strace");
  write_file(path, bytes);
  try {
    read_stream(path);
    FAIL() << "no error for " << phrase;
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.path(), path);
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
    EXPECT_NE(what.find(phrase), std::string::npos) << what;
  }
}

TEST(TraceCorruption, BadMagic) {
  auto bytes = valid_file_bytes(temp_path("v1.strace"));
  bytes[0] ^= 0xFF;
  expect_format_error(bytes, "bad magic", "magic");
}

TEST(TraceCorruption, WrongVersion) {
  auto bytes = valid_file_bytes(temp_path("v2.strace"));
  bytes[8] = 9;  // version field; re-seal the header checksum so the
                 // version check itself (not the crc) fires
  const std::uint32_t crc = trace_codec::crc32(bytes.data(), 20);
  for (int i = 0; i < 4; ++i)
    bytes[20 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  expect_format_error(bytes, "unsupported trace version", "version");
}

TEST(TraceCorruption, BadHeaderChecksum) {
  auto bytes = valid_file_bytes(temp_path("v3.strace"));
  bytes[13] ^= 0x01;  // block_records field, covered by the header crc
  expect_format_error(bytes, "bad header checksum", "hdrcrc");
}

TEST(TraceCorruption, TruncatedHeader) {
  auto bytes = valid_file_bytes(temp_path("v4.strace"));
  bytes.resize(10);
  expect_format_error(bytes, "truncated header", "trunchdr");
}

TEST(TraceCorruption, TruncatedBlockHeader) {
  auto bytes = valid_file_bytes(temp_path("v5.strace"));
  bytes.resize(trace_codec::kHeaderBytes + 7);
  expect_format_error(bytes, "truncated block header", "truncbh");
}

TEST(TraceCorruption, TruncatedMidBlock) {
  auto bytes = valid_file_bytes(temp_path("v6.strace"));
  // Cut inside the first block's payload.
  bytes.resize(trace_codec::kHeaderBytes + trace_codec::kBlockHeaderBytes + 9);
  expect_format_error(bytes, "truncated block payload", "truncpl");
}

TEST(TraceCorruption, BadBlockChecksum) {
  auto bytes = valid_file_bytes(temp_path("v7.strace"));
  bytes[trace_codec::kHeaderBytes + trace_codec::kBlockHeaderBytes + 4] ^= 0x20;
  expect_format_error(bytes, "bad block checksum", "blockcrc");
}

TEST(TraceCorruption, RecordCountMismatch) {
  auto bytes = valid_file_bytes(temp_path("v8.strace"));
  // First block claims one fewer record; its payload crc still matches,
  // so the decoder's exact-consumption check must fire.
  bytes[trace_codec::kHeaderBytes + 4] -= 1;
  expect_format_error(bytes, "trailing payload bytes", "count");
}

TEST(TraceCorruption, RecordCountAboveHeaderLimitRejected) {
  // A crafted record_count above the header's block_records must be
  // rejected before decode — it is the only way a "valid" block could
  // materialize an arbitrarily large decoded vector.
  auto bytes = valid_file_bytes(temp_path("v12.strace"));
  trace_codec::put_u32(bytes.data() + trace_codec::kHeaderBytes + 4,
                       1u << 24);
  expect_format_error(bytes, "exceeds header block_records", "countcap");
}

TEST(TraceCorruption, NextAfterDecodeErrorStaysEnded) {
  // A caller that catches a decode error and keeps pulling must get
  // end-of-trace, never the corrupt block's records.
  auto bytes = valid_file_bytes(temp_path("v13.strace"));
  bytes[trace_codec::kHeaderBytes + 4] -= 1;  // count mismatch at decode
  const std::string path = temp_path("corrupt_resume.strace");
  write_file(path, bytes);
  StreamFileTrace t(path);
  TraceRecord r;
  EXPECT_THROW(t.next(r), TraceFormatError);
  EXPECT_FALSE(t.next(r));
  EXPECT_EQ(t.records_streamed(), 0u);
}

TEST(TraceCorruption, FooterTotalMismatch) {
  auto bytes = valid_file_bytes(temp_path("v9.strace"));
  // Patch the footer's total and re-seal its checksum.
  std::uint8_t* total = bytes.data() + bytes.size() - 8;
  total[0] ^= 0x01;
  const std::uint32_t crc = trace_codec::crc32(total, 8);
  std::uint8_t* crc_field = total - 4;
  for (int i = 0; i < 4; ++i)
    crc_field[i] = static_cast<std::uint8_t>(crc >> (8 * i));
  expect_format_error(bytes, "record-count footer mismatch", "footer");
}

TEST(TraceCorruption, TruncatedFooter) {
  auto bytes = valid_file_bytes(temp_path("v10.strace"));
  bytes.resize(bytes.size() - 5);
  expect_format_error(bytes, "truncated footer", "truncft");
}

TEST(TraceCorruption, MissingFooterIsAcceptedAsCleanEof) {
  const std::string path = temp_path("nofooter.strace");
  const auto want = [&] {
    std::vector<TraceRecord> records;
    for (std::uint32_t i = 0; i < 64; ++i)
      records.push_back({i, false, 64ull * i});
    write_binary(path, records, 32);
    return records;
  }();
  auto bytes = read_file(path);
  bytes.resize(bytes.size() - trace_codec::kBlockHeaderBytes -
               trace_codec::kFooterTotalBytes);
  write_file(path, bytes);
  expect_records_equal(read_stream(path), want);
  // ... and loop mode still rewinds correctly without the footer.
  EXPECT_EQ(read_stream(path, /*loop=*/true, 150).size(), 150u);
}

TEST(TraceCorruption, SingleByteFlipSmoke) {
  // Every byte of a valid file is covered by some structural check, so
  // any single-byte flip must surface as a thrown TraceFormatError (or,
  // for size-field flips, a clean structural error) — never a crash and
  // never silently identical data.
  const std::string base = temp_path("flip_base.strace");
  const auto clean = valid_file_bytes(base, 300, 64);
  const auto want = read_stream(base);
  std::mt19937_64 rng(0xf11b);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t pos = rng() % clean.size();
    auto bytes = clean;
    bytes[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    const std::string path = temp_path("flip.strace");
    write_file(path, bytes);
    bool threw = false;
    std::vector<TraceRecord> got;
    try {
      got = read_stream(path);
    } catch (const std::exception&) {
      threw = true;
    }
    if (!threw) {
      // A flip the checksums somehow missed must at least change data.
      bool same = got.size() == want.size();
      for (std::size_t i = 0; same && i < got.size(); ++i)
        same = got[i].gap == want[i].gap &&
               got[i].is_write == want[i].is_write &&
               got[i].addr == want[i].addr;
      EXPECT_FALSE(same) << "flip at byte " << pos << " went undetected";
    }
  }
}

TEST(TraceCorruption, OversizedPayloadFieldRejectedWithoutAllocation) {
  auto bytes = valid_file_bytes(temp_path("v11.strace"));
  // payload_bytes = 0xFFFFFFF0: must be rejected by the size guard, not
  // die trying to allocate it.
  for (int i = 0; i < 4; ++i)
    bytes[trace_codec::kHeaderBytes + i] = (i == 0) ? 0xF0 : 0xFF;
  expect_format_error(bytes, "oversized payload", "oversize");
}

// ------------------------------------------------------- bounded memory

/// Deterministic record generator: cheap enough to run twice over 10M
/// records without storing them.
TraceRecord soak_record(std::uint64_t i) {
  std::uint64_t x = (i + 1) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  TraceRecord r;
  r.gap = static_cast<std::uint32_t>(x % 400);
  r.is_write = (x >> 16 & 1) != 0;
  r.addr = (x >> 17) << 6;
  return r;
}

TEST(StreamFileTrace, TenMillionRecordsBoundedMemory) {
  const std::string path = temp_path("soak.strace");
  constexpr std::uint64_t kRecords = 10'000'000;
  {
    TraceWriter w(path);
    for (std::uint64_t i = 0; i < kRecords; ++i) w.append(soak_record(i));
    w.close();
  }
  StreamFileTrace t(path);
  std::size_t max_resident = 0;
  TraceRecord r;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(t.next(r)) << "ended early at " << i;
    const TraceRecord want = soak_record(i);
    ASSERT_EQ(r.gap, want.gap) << i;
    ASSERT_EQ(r.is_write, want.is_write) << i;
    ASSERT_EQ(r.addr, want.addr) << i;
    if (i % 65536 == 0)
      max_resident = std::max(max_resident, t.resident_bytes());
  }
  EXPECT_FALSE(t.next(r));
  EXPECT_EQ(t.records_streamed(), kRecords);
  // A full-file vector would hold 160MB; the streaming reader must stay
  // within a few blocks (default 4096 records/block => well under 1MB).
  EXPECT_LT(max_resident, 1u << 20)
      << "resident memory grew with trace length";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace secddr::sim
