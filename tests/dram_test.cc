// DRAM substrate: timing presets, address mapping, bank state machine,
// and controller scheduling properties under randomized request streams.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "dram/address.h"
#include "dram/bank.h"
#include "dram/controller.h"
#include "dram/system.h"
#include "dram/timings.h"

namespace secddr::dram {
namespace {

Geometry small_geometry() {
  Geometry g;
  g.ranks = 2;
  g.bank_groups = 4;
  g.banks_per_group = 4;
  g.rows_per_bank = 1 << 10;
  g.columns_per_row = 128;
  return g;
}

// ---------------------------------------------------------------- timings

TEST(Timings, Table1Defaults) {
  const Timings t = Timings::ddr4_3200();
  EXPECT_EQ(t.tCL, 22u);
  EXPECT_EQ(t.tRCD, 22u);
  EXPECT_EQ(t.tRP, 22u);
  EXPECT_EQ(t.tRAS, 56u);
  EXPECT_EQ(t.tCCD_S, 4u);
  EXPECT_EQ(t.tCCD_L, 10u);
  EXPECT_EQ(t.tCWL, 16u);
  EXPECT_EQ(t.tWTR_S, 4u);
  EXPECT_EQ(t.tWTR_L, 12u);
  EXPECT_DOUBLE_EQ(t.clock_mhz, 1600.0);
}

TEST(Timings, EwcrcExtendsWriteBurstOnly) {
  const Timings base = Timings::ddr4_3200();
  const Timings e = base.with_ewcrc_burst();
  EXPECT_EQ(e.write_burst_cycles, base.write_burst_cycles + 1);  // BL8->BL10
  EXPECT_EQ(e.read_burst_cycles, base.read_burst_cycles);
  EXPECT_EQ(e.tCL, base.tCL);
}

TEST(Timings, Ddr42400KeepsWallClockLatency) {
  const Timings full = Timings::ddr4_3200();
  const Timings derated = Timings::ddr4_2400();
  EXPECT_DOUBLE_EQ(derated.clock_mhz, 1200.0);
  // Same (or slightly larger, due to ceil) nanosecond latency.
  const double full_ns = full.tCL * full.ns_per_cycle();
  const double derated_ns = derated.tCL * derated.ns_per_cycle();
  EXPECT_GE(derated_ns, full_ns - 1e-9);
  EXPECT_LE(derated_ns, full_ns + derated.ns_per_cycle());
}

TEST(Timings, GeometryCapacity) {
  Geometry g;  // 2 ranks x 16 banks x 64K rows x 128 cols x 64B = 16GB
  EXPECT_EQ(g.capacity_bytes(), 16ull << 30);
  EXPECT_EQ(g.total_banks(), 32u);
}

// ---------------------------------------------------------------- address

TEST(AddressMapping, DecodeEncodeRoundTrip) {
  const Geometry g = small_geometry();
  const AddressMapping m(g, /*xor_banks=*/true);
  Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const Addr a = line_base(rng.next() % g.capacity_bytes());
    const DecodedAddr d = m.decode(a);
    EXPECT_LT(d.rank, g.ranks);
    EXPECT_LT(d.bank_group, g.bank_groups);
    EXPECT_LT(d.bank, g.banks_per_group);
    EXPECT_LT(d.row, g.rows_per_bank);
    EXPECT_LT(d.column, g.columns_per_row);
    EXPECT_EQ(m.encode(d), a);
  }
}

TEST(AddressMapping, SequentialLinesShareRow) {
  const Geometry g = small_geometry();
  const AddressMapping m(g, true);
  const DecodedAddr d0 = m.decode(0);
  const DecodedAddr d1 = m.decode(64);
  EXPECT_EQ(d0.row, d1.row);
  EXPECT_EQ(d0.flat_bank(g), d1.flat_bank(g));
  EXPECT_EQ(d0.column + 1, d1.column);
}

TEST(AddressMapping, XorSpreadsConflictStreams) {
  // Addresses that differ only in row bits should not all land in the
  // same bank when XOR permutation is on.
  const Geometry g = small_geometry();
  const AddressMapping m(g, true);
  std::set<unsigned> banks;
  const Addr row_stride = static_cast<Addr>(g.columns_per_row) * kLineSize *
                          g.bank_groups * g.banks_per_group * g.ranks;
  for (Addr r = 0; r < 16; ++r)
    banks.insert(m.decode(r * row_stride).flat_bank(g));
  EXPECT_GT(banks.size(), 4u);
}

// ---------------------------------------------------------------- bank

TEST(Bank, ActivateOpensRowAndSetsTimings) {
  Bank b;
  EXPECT_FALSE(b.is_open());
  b.activate(42, 100, 22, 56);
  EXPECT_TRUE(b.is_open());
  EXPECT_EQ(b.open_row, 42);
  EXPECT_EQ(b.next_read, 122u);
  EXPECT_EQ(b.next_precharge, 156u);
  b.precharge(200, 22);
  EXPECT_FALSE(b.is_open());
  EXPECT_EQ(b.next_activate, 222u);
}

// ---------------------------------------------------------------- controller

struct Harness {
  Geometry g = small_geometry();
  Timings t = Timings::ddr4_3200();
  Controller c{g, t};
  Cycle now = 0;
  std::map<std::uint64_t, Completion> done;

  void run_until_drained(Cycle limit = 2'000'000) {
    while (c.pending() > 0 && now < limit) {
      c.tick(now);
      for (const auto& comp : c.completions()) done[comp.tag] = comp;
      c.completions().clear();
      ++now;
    }
  }
};

TEST(Controller, SingleReadCompletesWithActRcdClBl) {
  Harness h;
  ASSERT_TRUE(h.c.enqueue(0x1000, false, 1, 0));
  h.run_until_drained();
  ASSERT_TRUE(h.done.count(1));
  // Cold read: ACT @1? (tick0 issues ACT) + tRCD + tCL + BL.
  const Cycle latency = h.done[1].finish - h.done[1].arrival;
  EXPECT_GE(latency, static_cast<Cycle>(h.t.tRCD + h.t.tCL +
                                        h.t.read_burst_cycles));
  EXPECT_LE(latency, static_cast<Cycle>(h.t.tRCD + h.t.tCL +
                                        h.t.read_burst_cycles + 4));
}

TEST(Controller, RowHitFasterThanRowMiss) {
  Harness h;
  ASSERT_TRUE(h.c.enqueue(0x0, false, 1, 0));
  h.run_until_drained();
  const Cycle cold = h.done[1].finish - h.done[1].arrival;
  // Same row again: hit.
  const Cycle t0 = h.now;
  ASSERT_TRUE(h.c.enqueue(64, false, 2, t0));
  h.run_until_drained();
  const Cycle hit = h.done[2].finish - h.done[2].arrival;
  EXPECT_LT(hit, cold);
  EXPECT_GE(hit, static_cast<Cycle>(h.t.tCL + h.t.read_burst_cycles));
}

TEST(Controller, AllRequestsEventuallyComplete) {
  Harness h;
  Xoshiro256 rng(7);
  std::uint64_t tag = 0;
  unsigned enqueued = 0;
  for (Cycle cyc = 0; cyc < 100000 && enqueued < 3000; ++cyc) {
    if (rng.chance(0.25)) {
      const Addr a = line_base(rng.next() % h.g.capacity_bytes());
      const bool w = rng.chance(0.3);
      if ((w && h.c.can_accept_write()) || (!w && h.c.can_accept_read())) {
        ASSERT_TRUE(h.c.enqueue(a, w, ++tag, cyc));
        ++enqueued;
      }
    }
    h.c.tick(cyc);
    for (const auto& comp : h.c.completions()) h.done[comp.tag] = comp;
    h.c.completions().clear();
    h.now = cyc + 1;
  }
  h.run_until_drained();
  EXPECT_EQ(h.c.pending(), 0u);
  EXPECT_EQ(h.c.stats().reads_completed + h.c.stats().writes_completed,
            enqueued);
}

TEST(Controller, ReadLatencyBoundedUnderLoad) {
  // Even under saturation no read should exceed a generous bound
  // (queue depth x worst-case service time) — catches starvation bugs.
  Harness h;
  Xoshiro256 rng(11);
  std::uint64_t tag = 0;
  for (Cycle cyc = 0; cyc < 50000; ++cyc) {
    if (h.c.can_accept_read() && rng.chance(0.5)) {
      const Addr a = line_base(rng.next() % h.g.capacity_bytes());
      h.c.enqueue(a, false, ++tag, cyc);
    }
    h.c.tick(cyc);
    for (const auto& comp : h.c.completions()) {
      EXPECT_LT(comp.finish - comp.arrival, 20000u)
          << "read starved: tag " << comp.tag;
    }
    h.c.completions().clear();
    h.now = cyc + 1;
  }
}

TEST(Controller, WriteForwardingServesReadsFromWriteQueue) {
  Harness h;
  ASSERT_TRUE(h.c.enqueue(0x4000, true, 1, 0));
  ASSERT_TRUE(h.c.enqueue(0x4000, false, 2, 0));  // same line read
  h.run_until_drained();
  EXPECT_GE(h.c.stats().write_forwards, 1u);
  ASSERT_TRUE(h.done.count(2));
  // Forwarded read is fast (no DRAM access).
  EXPECT_LE(h.done[2].finish - h.done[2].arrival, h.t.tCL + 1);
}

TEST(Controller, WriteMergingCoalescesSameLine) {
  Harness h;
  ASSERT_TRUE(h.c.enqueue(0x8000, true, 1, 0));
  ASSERT_TRUE(h.c.enqueue(0x8000, true, 2, 0));
  h.run_until_drained();
  EXPECT_EQ(h.c.stats().writes_enqueued, 2u);
  // Only one write burst hits the bus.
  EXPECT_EQ(h.c.stats().writes_completed, 2u);
  EXPECT_LE(h.c.stats().data_bus_busy_cycles,
            static_cast<std::uint64_t>(h.t.write_burst_cycles));
}

TEST(Controller, WriteMergeCompletesEachTagExactlyOnce) {
  // Three writes to one line merge into a single queue entry. Each
  // logical write must be counted and completed exactly once: the
  // superseded writes at merge time, the survivor when it issues.
  Harness h;
  ASSERT_TRUE(h.c.enqueue(0x8000, true, 1, 0));
  ASSERT_TRUE(h.c.enqueue(0x8000, true, 2, 0));
  ASSERT_TRUE(h.c.enqueue(0x8000, true, 3, 0));
  std::map<std::uint64_t, unsigned> completions_per_tag;
  Cycle cyc = 0;
  while ((h.c.pending() > 0 || cyc == 0) && cyc < 100000) {
    h.c.tick(cyc);
    for (const auto& comp : h.c.completions()) {
      EXPECT_TRUE(comp.is_write);
      ++completions_per_tag[comp.tag];
    }
    h.c.completions().clear();
    ++cyc;
  }
  EXPECT_EQ(completions_per_tag[1], 1u);
  EXPECT_EQ(completions_per_tag[2], 1u);
  EXPECT_EQ(completions_per_tag[3], 1u);
  EXPECT_EQ(h.c.stats().writes_enqueued, 3u);
  EXPECT_EQ(h.c.stats().writes_completed, 3u);
  // Only the surviving entry touches the bus.
  EXPECT_EQ(h.c.stats().data_bus_busy_cycles,
            static_cast<std::uint64_t>(h.t.write_burst_cycles));
}

TEST(Controller, ForwardedReadsAreNotCountedAsEnqueued) {
  Harness h;
  ASSERT_TRUE(h.c.enqueue(0x4000, true, 1, 0));
  ASSERT_TRUE(h.c.enqueue(0x4000, false, 2, 0));  // forwarded
  EXPECT_EQ(h.c.stats().reads_enqueued, 0u)
      << "a forwarded read never enters the read queue";
  EXPECT_EQ(h.c.stats().write_forwards, 1u);
  EXPECT_EQ(h.c.stats().reads_completed, 1u);
  // A read that actually queues still counts.
  ASSERT_TRUE(h.c.enqueue(0x20000, false, 3, 0));
  EXPECT_EQ(h.c.stats().reads_enqueued, 1u);
  h.run_until_drained();
  EXPECT_EQ(h.c.stats().reads_completed, 2u);
}

TEST(Controller, NextEventCycleNeverMissesAStateChange) {
  // Property behind the event-driven loop: whenever next_event_cycle()
  // says "nothing before cycle N", every tick strictly before N must
  // leave all statistics unchanged and produce no completions.
  Harness h;
  Xoshiro256 rng(17);
  std::uint64_t tag = 0;
  const auto snapshot = [&] {
    const ControllerStats& s = h.c.stats();
    return std::make_tuple(s.reads_enqueued, s.writes_enqueued,
                           s.reads_completed, s.writes_completed, s.row_hits,
                           s.row_misses, s.activates, s.precharges,
                           s.refreshes, s.write_forwards,
                           s.data_bus_busy_cycles, s.total_read_latency,
                           h.c.pending());
  };
  for (Cycle cyc = 0; cyc < 30000; ++cyc) {
    if (rng.chance(0.05)) {
      const Addr a = line_base(rng.next() % h.g.capacity_bytes());
      const bool w = rng.chance(0.4);
      if ((w && h.c.can_accept_write()) || (!w && h.c.can_accept_read()))
        h.c.enqueue(a, w, ++tag, cyc);
      h.c.completions().clear();  // enqueue may forward/merge-complete
    }
    const Cycle next_event = h.c.next_event_cycle(cyc);
    const auto before = snapshot();
    h.c.tick(cyc);
    if (next_event > cyc) {
      EXPECT_EQ(before, snapshot()) << "state changed at " << cyc
                                    << " despite next event " << next_event;
      EXPECT_TRUE(h.c.completions().empty());
    }
    h.c.completions().clear();
  }
}

TEST(Controller, RefreshesHappenAtTrefiRate) {
  Harness h;
  const Cycle horizon = static_cast<Cycle>(h.t.tREFI) * 10;
  for (Cycle cyc = 0; cyc < horizon; ++cyc) {
    h.c.tick(cyc);
    h.c.completions().clear();
  }
  // ~10 refreshes per rank expected (staggered start).
  EXPECT_GE(h.c.stats().refreshes, 8u * h.g.ranks);
  EXPECT_LE(h.c.stats().refreshes, 12u * h.g.ranks);
}

TEST(Controller, RowHitRateHighForSequentialStream) {
  Harness h;
  std::uint64_t tag = 0;
  Cycle cyc = 0;
  // Stream through one row: 128 sequential lines.
  for (unsigned i = 0; i < 128; ++i) {
    while (!h.c.can_accept_read()) {
      h.c.tick(cyc);
      h.c.completions().clear();
      ++cyc;
    }
    h.c.enqueue(i * 64, false, ++tag, cyc);
  }
  h.now = cyc;
  h.run_until_drained();
  EXPECT_GT(h.c.stats().row_hit_rate(), 0.9);
}

TEST(Controller, RandomStreamHasLowerRowHitRate) {
  Harness h;
  Xoshiro256 rng(13);
  std::uint64_t tag = 0;
  Cycle cyc = 0;
  for (unsigned i = 0; i < 512; ++i) {
    while (!h.c.can_accept_read()) {
      h.c.tick(cyc);
      h.c.completions().clear();
      ++cyc;
    }
    h.c.enqueue(line_base(rng.next() % h.g.capacity_bytes()), false, ++tag,
                cyc);
  }
  h.now = cyc;
  h.run_until_drained();
  EXPECT_LT(h.c.stats().row_hit_rate(), 0.5);
}

TEST(Controller, QueueFullRejects) {
  Harness h;
  unsigned accepted = 0;
  for (unsigned i = 0; i < 200; ++i)
    accepted += h.c.enqueue(i * 64 * 131, false, i, 0);  // distinct rows
  EXPECT_EQ(accepted, 64u);  // Table I read queue size
}

TEST(Controller, LongerWriteBurstIncreasesBusBusy) {
  // The eWCRC cost: same writes, BL10 occupies 25% more bus cycles.
  auto run_writes = [](const Timings& t) {
    Geometry g = small_geometry();
    Controller c(g, t);
    std::uint64_t tag = 0;
    Cycle cyc = 0;
    for (unsigned i = 0; i < 256; ++i) {
      while (!c.can_accept_write()) {
        c.tick(cyc);
        c.completions().clear();
        ++cyc;
      }
      c.enqueue(i * 64 * 257, true, ++tag, cyc);
    }
    while (c.pending() > 0 && cyc < 1000000) {
      c.tick(cyc);
      c.completions().clear();
      ++cyc;
    }
    return c.stats().data_bus_busy_cycles;
  };
  const auto bl8 = run_writes(Timings::ddr4_3200());
  const auto bl10 = run_writes(Timings::ddr4_3200().with_ewcrc_burst());
  EXPECT_EQ(bl10, bl8 / 4 * 5);  // 4 -> 5 cycles per write burst
}

// Property + regression: the per-bank request queues must preserve exact
// FR-FCFS semantics — scheduling order, arrival-order (seq) tie-breaking,
// write merging/forwarding, and can_accept_read/write backpressure —
// under randomized address streams. Each stream's full observable
// behaviour (every Completion field in drain order, final stats, and the
// drain time, which depends on backpressure) is folded into an FNV-1a
// hash and compared against hashes captured at the PR 3 commit, whose
// controller still scanned global arrival-ordered deques. Any
// reordering, timing drift, or backpressure change perturbs the hash.
TEST(Controller, PerBankQueuesMatchPr3GoldenStreams) {
  struct Lcg {
    std::uint64_t s;
    std::uint64_t next() {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      return s >> 11;
    }
  };
  struct StreamCfg {
    const char* name;
    std::uint64_t seed;
    SchedulingPolicy policy;
    unsigned space_bits;  ///< address space spans 1<<bits lines
    unsigned write_pct;   ///< % of requests that are writes
    unsigned burst;       ///< max enqueue attempts per cycle
    unsigned cycles;      ///< driven cycles before the drain phase
    std::uint64_t golden; ///< hash captured at the PR 3 commit
  };
  const std::vector<StreamCfg> streams = {
      {"frfcfs_mixed", 1, SchedulingPolicy::kFrFcfs, 14, 30, 2, 30000,
       0xb33ca9850041babaull},
      {"frfcfs_hot", 2, SchedulingPolicy::kFrFcfs, 6, 30, 3, 30000,
       0x5359aa359ad4651bull},
      {"frfcfs_writeheavy", 3, SchedulingPolicy::kFrFcfs, 12, 70, 3, 30000,
       0x1f6fd8ad5d0b7033ull},
      {"frfcfs_sparse", 4, SchedulingPolicy::kFrFcfs, 20, 20, 1, 30000,
       0x5b10ffc69c3d3518ull},
      {"fcfs_mixed", 5, SchedulingPolicy::kFcfs, 14, 30, 2, 30000,
       0xa9b94dacf4f85fc7ull},
      {"fcfs_hot", 6, SchedulingPolicy::kFcfs, 6, 50, 3, 30000,
       0x1cbd3468f788fdebull},
  };
  for (const StreamCfg& cfg : streams) {
    SCOPED_TRACE(cfg.name);
    Geometry g;  // default (full Table I) geometry, as captured
    Controller ctrl(g, Timings::ddr4_3200(), 64, 64, cfg.policy);
    Lcg rng{cfg.seed};
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    const auto mix = [&](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    std::uint64_t tag = 0;
    const std::uint64_t space = (1ull << cfg.space_bits) * 64ull;
    Cycle now = 0;
    const auto drive = [&](bool inject) {
      if (inject) {
        const unsigned n = static_cast<unsigned>(rng.next() % (cfg.burst + 1));
        for (unsigned i = 0; i < n; ++i) {
          const bool is_write = rng.next() % 100 < cfg.write_pct;
          const Addr addr = (rng.next() % space) & ~Addr{63};
          if (is_write ? ctrl.can_accept_write() : ctrl.can_accept_read())
            ctrl.enqueue(addr, is_write, tag++, now);
        }
      }
      ctrl.tick(now);
      for (const auto& done : ctrl.completions()) {
        mix(done.tag);
        mix(done.addr);
        mix(done.is_write ? 1 : 0);
        mix(done.arrival);
        mix(done.finish);
      }
      ctrl.completions().clear();
      ++now;
    };
    for (Cycle i = 0; i < cfg.cycles; ++i) drive(true);
    while (ctrl.pending() > 0 && now < cfg.cycles + 200000) drive(false);
    const auto& s = ctrl.stats();
    mix(s.reads_enqueued);
    mix(s.writes_enqueued);
    mix(s.reads_completed);
    mix(s.writes_completed);
    mix(s.row_hits);
    mix(s.row_misses);
    mix(s.activates);
    mix(s.precharges);
    mix(s.refreshes);
    mix(s.write_forwards);
    mix(s.data_bus_busy_cycles);
    mix(s.total_read_latency);
    mix(now);
    EXPECT_EQ(h, cfg.golden) << "per-bank queues diverged from the PR 3 "
                                "global-deque controller on this stream";
    EXPECT_EQ(ctrl.pending(), 0u) << "stream failed to drain";
  }
}

// ---------------------------------------------------------------- system

TEST(DramSystem, ClockDomainRatioExact) {
  // 3200MHz core, 1600MHz memory: exactly 1 memory tick per 2 core ticks.
  DramSystem sys(small_geometry(), Timings::ddr4_3200(), 3200.0);
  for (int i = 0; i < 1000; ++i) sys.tick_core_cycle();
  EXPECT_EQ(sys.memory_cycle(), 500u);
  // 1200MHz memory: 3 per 8.
  DramSystem sys2(small_geometry(), Timings::ddr4_2400(), 3200.0);
  for (int i = 0; i < 8000; ++i) sys2.tick_core_cycle();
  EXPECT_EQ(sys2.memory_cycle(), 3000u);
}

TEST(DramSystem, CompletionsArriveInCoreCycles) {
  DramSystem sys(small_geometry(), Timings::ddr4_3200(), 3200.0);
  ASSERT_TRUE(sys.enqueue(0x1000, false, 77));
  std::vector<Completion> got;
  for (int i = 0; i < 10000 && got.empty(); ++i) {
    sys.tick_core_cycle();
    auto v = sys.drain_completions();
    got.insert(got.end(), v.begin(), v.end());
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, 77u);
  // Roughly 2x the memory-cycle latency in core cycles.
  EXPECT_GT(got[0].finish, 2u * (22 + 22));
  EXPECT_LT(got[0].finish, 400u);
}

}  // namespace
}  // namespace secddr::dram
