// Tests for the parallel sweep runner in bench/sweep.{h,cc}: ordering,
// error propagation, and serial/parallel result equivalence.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "../bench/sweep.h"

namespace secddr::bench {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for(n, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, SerialPathRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroAndOneItems) {
  int calls = 0;
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(64, 4,
                   [&](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Serial path too.
  EXPECT_THROW(parallel_for(2, 1,
                            [&](std::size_t) {
                              throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(CrossSweep, WorkloadMajorOrderAndFilter) {
  const auto& suite = workloads::suite();
  ASSERT_GE(suite.size(), 2u);
  const std::vector<secmem::SecurityParams> configs = {
      secmem::SecurityParams::baseline_tree_ctr(),
      secmem::SecurityParams::secddr_ctr(),
  };

  BenchOptions opt;
  auto points = cross_sweep(suite, configs, opt);
  ASSERT_EQ(points.size(), suite.size() * configs.size());
  EXPECT_EQ(points[0].workload.name, suite[0].name);
  EXPECT_EQ(points[1].workload.name, suite[0].name);
  EXPECT_EQ(points[2].workload.name, suite[1].name);

  opt.filter = suite[0].name;
  auto filtered = cross_sweep(suite, configs, opt);
  for (const auto& p : filtered)
    EXPECT_NE(p.workload.name.find(suite[0].name), std::string::npos);
  EXPECT_LT(filtered.size(), points.size());
}

// The acceptance gate for the tentpole: a parallel sweep must produce
// results identical to the serial path, point for point.
TEST(RunSweep, ParallelMatchesSerial) {
  BenchOptions opt;
  opt.instructions = 3000;
  opt.warmup = 500;
  opt.cores = 2;

  const auto& suite = workloads::suite();
  std::vector<workloads::WorkloadDesc> subset(suite.begin(),
                                              suite.begin() + 3);
  const std::vector<secmem::SecurityParams> configs = {
      secmem::SecurityParams::baseline_tree_ctr(),
      secmem::SecurityParams::secddr_ctr(),
  };
  const auto points = cross_sweep(subset, configs, opt);

  const auto serial = run_sweep(points, opt, /*jobs=*/1);
  const auto parallel = run_sweep(points, opt, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(points[i].workload.name);
    EXPECT_EQ(serial[i].cycles, parallel[i].cycles);
    EXPECT_DOUBLE_EQ(serial[i].total_ipc, parallel[i].total_ipc);
    EXPECT_DOUBLE_EQ(serial[i].llc_mpki, parallel[i].llc_mpki);
    EXPECT_EQ(serial[i].metadata_accesses, parallel[i].metadata_accesses);
  }
}

TEST(SweepJobs, EnvOverride) {
  // Only exercised when the env knob is absent: default must be >= 1.
  EXPECT_GE(sweep_jobs(), 1u);
}

// Sets an env var for one test, restoring the previous value (or absence)
// on destruction so the knob tests cannot leak into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (saved_.has_value())
      ::setenv(name_, saved_->c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(ThreadKnobs, EnvUnsignedRejectsMalformedValues) {
  ScopedEnv e("SECDDR_TEST_KNOB", nullptr);
  EXPECT_EQ(env_unsigned("SECDDR_TEST_KNOB", 7u), 7u);  // unset
  ::setenv("SECDDR_TEST_KNOB", "3", 1);
  EXPECT_EQ(env_unsigned("SECDDR_TEST_KNOB", 7u), 3u);
  ::setenv("SECDDR_TEST_KNOB", "0", 1);  // must be positive
  EXPECT_EQ(env_unsigned("SECDDR_TEST_KNOB", 7u), 7u);
  ::setenv("SECDDR_TEST_KNOB", "-1", 1);  // strtoul would wrap this
  EXPECT_EQ(env_unsigned("SECDDR_TEST_KNOB", 7u), 7u);
  ::setenv("SECDDR_TEST_KNOB", "2x", 1);  // trailing junk
  EXPECT_EQ(env_unsigned("SECDDR_TEST_KNOB", 7u), 7u);
}

TEST(ThreadKnobs, PriorityDefaultsFollowChannelCount) {
  ScopedEnv p("SECDDR_THREAD_PRIORITY", nullptr);
  ScopedEnv c("SECDDR_CHANNELS", nullptr);
  // Single channel: nothing to decouple, sweep jobs keep priority.
  EXPECT_EQ(thread_priority(), ThreadPriority::kJobs);
  // Multiple channels flip the default to the in-System threads.
  ::setenv("SECDDR_CHANNELS", "4", 1);
  EXPECT_EQ(thread_priority(), ThreadPriority::kMem);
  // Explicit override beats the channel heuristic in both directions.
  ::setenv("SECDDR_THREAD_PRIORITY", "jobs", 1);
  EXPECT_EQ(thread_priority(), ThreadPriority::kJobs);
  ::unsetenv("SECDDR_CHANNELS");
  ::setenv("SECDDR_THREAD_PRIORITY", "mem", 1);
  EXPECT_EQ(thread_priority(), ThreadPriority::kMem);
  // Garbage falls back to the heuristic default.
  ::setenv("SECDDR_THREAD_PRIORITY", "bogus", 1);
  EXPECT_EQ(thread_priority(), ThreadPriority::kJobs);
}

TEST(ThreadKnobs, MemPriorityClampsSweepJobsNotMemThreads) {
  ScopedEnv p("SECDDR_THREAD_PRIORITY", "mem");
  ScopedEnv c("SECDDR_CHANNELS", "4");
  ScopedEnv m("SECDDR_MEM_THREADS", "4");
  ScopedEnv j("SECDDR_JOBS", "64");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Under mem priority jobs yield: 64 x 4 cannot fit any machine CTest
  // runs on, so sweep_jobs() must clamp to the share mem_threads leaves.
  EXPECT_EQ(sweep_jobs(), std::max(1u, hw / 4));
  // ...while mem_threads itself is bounded only by the hardware.
  const BenchOptions o = BenchOptions::from_env();
  EXPECT_EQ(o.mem_threads, std::min(4u, hw));
}

TEST(ThreadKnobs, JobsPriorityClampsMemThreads) {
  ScopedEnv p("SECDDR_THREAD_PRIORITY", "jobs");
  ScopedEnv c("SECDDR_CHANNELS", "4");
  ScopedEnv m("SECDDR_MEM_THREADS", "64");
  ScopedEnv j("SECDDR_JOBS", "2");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Jobs keep their requested width...
  EXPECT_EQ(sweep_jobs(), 2u);
  // ...and mem_threads is squeezed into the share the workers leave.
  const BenchOptions o = BenchOptions::from_env();
  EXPECT_EQ(o.mem_threads, std::max(1u, hw / 2));
}

}  // namespace
}  // namespace secddr::bench
