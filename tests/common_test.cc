// Common utilities: cache model, PRNG, stats, bit ops, table printer.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bitops.h"
#include "common/cache.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace secddr {
namespace {

// ---------------------------------------------------------------- bitops

TEST(BitOps, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1ull << 63), 63u);
}

TEST(BitOps, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(4097));
}

TEST(BitOps, BitsExtract) {
  EXPECT_EQ(bits(0xABCDull, 0, 4), 0xDull);
  EXPECT_EQ(bits(0xABCDull, 4, 8), 0xBCull);
  EXPECT_EQ(bits(0xFFFFFFFFFFFFFFFFull, 0, 64), 0xFFFFFFFFFFFFFFFFull);
}

TEST(BitOps, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 64), 1u);
}

// ---------------------------------------------------------------- types

TEST(Types, LineHelpers) {
  EXPECT_EQ(line_base(0x12345), 0x12340ull);
  EXPECT_EQ(line_index(0x12345), 0x12345ull >> 6);
  EXPECT_EQ(line_base(line_base(0x999)), line_base(0x999));
}

TEST(Types, CacheLineXor) {
  CacheLine a = CacheLine::filled(0xFF);
  const CacheLine b = CacheLine::filled(0x0F);
  a ^= b;
  EXPECT_EQ(a, CacheLine::filled(0xF0));
}

TEST(Types, LoadStoreLe64) {
  std::uint8_t buf[8];
  store_le64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(buf[7], 0x01);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ull);
}

// ---------------------------------------------------------------- random

TEST(Random, Deterministic) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Random, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Random, DoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, GeometricMeanApproximates) {
  Xoshiro256 rng(13);
  const double target = 25.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.next_geometric(target));
  EXPECT_NEAR(sum / n, target, target * 0.05);
}

TEST(Random, ChanceFrequency) {
  Xoshiro256 rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_NEAR(geomean({1, 100}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, RunningStat) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, Percent) {
  EXPECT_EQ(percent(0.188), "18.8%");
  EXPECT_EQ(percent(1.904), "190.4%");
}

// ---------------------------------------------------------------- table

TEST(Table, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header line and separator present.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::num(1.0, 0), "1");
}

// ---------------------------------------------------------------- cache

TEST(Cache, HitAfterInstall) {
  SetAssocCache c(4096, 4);
  EXPECT_FALSE(c.probe(0x1000));
  c.install(0x1000, false);
  EXPECT_TRUE(c.probe(0x1000));
}

TEST(Cache, MissThenHitCountsCorrectly) {
  SetAssocCache c(4096, 4);
  auto r1 = c.access(0x40, false);
  EXPECT_FALSE(r1.hit);
  auto r2 = c.access(0x40, false);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(c.stats().accesses, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction) {
  // 2-way, line 64B: one set holds exactly 2 lines of the same set index.
  SetAssocCache c(128, 2);  // 1 set, 2 ways
  c.access(0 * 64, false);
  c.access(1 * 64, false);
  c.access(0 * 64, false);          // 0 is now MRU
  auto r = c.access(2 * 64, false); // evicts 1 (LRU)
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_addr, 1ull * 64);
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(64));
}

TEST(Cache, DirtyVictimReported) {
  SetAssocCache c(128, 2);
  c.access(0, true);   // dirty
  c.access(64, false);
  auto r = c.access(128, false);  // evicts 0 (LRU, dirty)
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.victim_dirty);
  EXPECT_EQ(r.victim_addr, 0ull);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, TouchDoesNotAllocate) {
  SetAssocCache c(4096, 4);
  EXPECT_FALSE(c.touch(0x2000, true));
  EXPECT_FALSE(c.probe(0x2000));
  c.install(0x2000, false);
  EXPECT_TRUE(c.touch(0x2000, true));
}

TEST(Cache, InvalidateReturnsDirty) {
  SetAssocCache c(4096, 4);
  c.install(0x80, true);
  EXPECT_TRUE(c.invalidate(0x80));
  EXPECT_FALSE(c.probe(0x80));
  c.install(0xC0, false);
  EXPECT_FALSE(c.invalidate(0xC0));
}

TEST(Cache, FlushAllEmptiesCache) {
  SetAssocCache c(4096, 4);
  for (Addr a = 0; a < 4096; a += 64) c.install(a, true);
  c.flush_all();
  for (Addr a = 0; a < 4096; a += 64) EXPECT_FALSE(c.probe(a));
}

TEST(Cache, VictimAddressRoundTrips) {
  // Property: the reported victim address maps back to the same set.
  SetAssocCache c(8192, 2);
  Xoshiro256 rng(23);
  std::set<Addr> installed;
  for (int i = 0; i < 2000; ++i) {
    const Addr a = line_base(rng.next() % (1ull << 30));
    auto r = c.access(a, rng.chance(0.5));
    if (r.evicted) {
      // Victim must previously have been present.
      EXPECT_TRUE(installed.count(r.victim_addr) || installed.empty())
          << "victim " << r.victim_addr << " never installed";
    }
    installed.insert(a);
  }
}

TEST(Cache, CapacityRespected) {
  // Fill more lines than capacity; resident set never exceeds capacity.
  SetAssocCache c(4096, 4);  // 64 lines
  for (Addr a = 0; a < 64 * 128; a += 64) c.access(a, false);
  unsigned resident = 0;
  for (Addr a = 0; a < 64 * 128; a += 64) resident += c.probe(a);
  EXPECT_LE(resident, 64u);
  EXPECT_GT(resident, 0u);
}

}  // namespace
}  // namespace secddr
