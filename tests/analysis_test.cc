// Analytical models: Table II power numbers, §III-B security arithmetic,
// and tree geometry (cross-checked against secmem::MetadataLayout).
#include <gtest/gtest.h>

#include "analysis/power.h"
#include "analysis/security.h"
#include "analysis/tree_geometry.h"
#include "secmem/layout.h"

namespace secddr::analysis {
namespace {

// ---------------------------------------------------------------- power

TEST(Power, Table2X4Row) {
  const AesPowerModel m;
  const auto rows = m.table2();
  ASSERT_GE(rows.size(), 2u);
  const PowerRow& x4 = rows[0];
  EXPECT_EQ(x4.aes_units, 2u);                    // paper: 2 units
  EXPECT_NEAR(x4.aes_power_mw, 70.8, 0.5);        // paper: 70.8mW
  EXPECT_EQ(x4.ecc_chips_per_rank, 2u);
  EXPECT_NEAR(x4.overhead_per_rank, 0.021, 0.002);  // paper: 2.1%
}

TEST(Power, Table2X8Row) {
  const AesPowerModel m;
  // By value: table2() returns a temporary, a reference would dangle.
  const PowerRow x8 = m.table2()[1];
  EXPECT_EQ(x8.aes_units, 3u);                    // paper: 3 units
  EXPECT_NEAR(x8.aes_power_mw, 106.3, 0.5);       // paper: 106.3mW
  EXPECT_EQ(x8.ecc_chips_per_rank, 1u);
  EXPECT_NEAR(x8.overhead_per_rank, 0.023, 0.002);  // paper: 2.3%
}

TEST(Power, Ddr5RowMatchesSection5B) {
  const AesPowerModel m;
  const PowerRow d5 = m.table2()[2];  // by value, see Table2X8Row
  EXPECT_NEAR(d5.chip_rate_gbps, 35.2, 0.01);  // x4 DDR5-8800
  EXPECT_EQ(d5.aes_units, 3u);                 // paper: 3 engines
  EXPECT_NEAR(d5.aes_power_mw, 89.3, 1.0);     // paper: 89.3mW at 1.1V
  EXPECT_LT(d5.overhead_per_rank, 0.05);       // paper: below 5%
}

TEST(Power, EngineScalingIsLinearInFrequency) {
  const AesPowerModel m;
  EXPECT_NEAR(m.engine_power_mw(1.05, 1.2) / m.engine_power_mw(0.525, 1.2),
              2.0, 1e-9);
}

TEST(Power, VoltageScalingIsQuadratic) {
  const AesPowerModel m;
  EXPECT_NEAR(m.engine_power_mw(0.5, 1.1) / m.engine_power_mw(0.5, 1.2),
              (1.1 * 1.1) / (1.2 * 1.2), 1e-9);
}

TEST(Power, TotalAreaUnderPaperBound) {
  const AesPowerModel m;
  // Paper: total SecDDR device area < 1.5mm^2 even with 3 engines.
  EXPECT_LT(m.total_area_mm2(3), 1.5);
}

// ---------------------------------------------------------------- security

TEST(Security, NaturalErrorIntervalMatchesPaper) {
  const EwcrcSecurityModel m;
  EXPECT_NEAR(m.error_interval_days(), 11.13, 0.3);  // paper: 11.13 days
}

TEST(Security, BruteForceAttemptsFor50Percent) {
  const EwcrcSecurityModel m;
  EXPECT_NEAR(m.bruteforce_attempts(0.5), 4.5e4, 1e3);  // paper: 4.5x10^4
}

TEST(Security, BruteForceDurationMatchesPaper) {
  const EwcrcSecurityModel m;
  EXPECT_NEAR(m.bruteforce_years(0.5), 1385.0, 40.0);  // paper: 1,385 years
}

TEST(Security, RealisticBerExtendsToMillionsOfYears) {
  const EwcrcSecurityModel m = EwcrcSecurityModel().with_ber(1e-21);
  EXPECT_NEAR(m.bruteforce_years(0.5) / 1e6, 138.5, 5.0);  // 138M years
}

TEST(Security, ParallelAttackStillInfeasible) {
  // 1,000 nodes x 16 channels at BER 1e-22: > 86,000 years (paper).
  const EwcrcSecurityModel m = EwcrcSecurityModel().with_ber(1e-22);
  EXPECT_GT(m.parallel_attack_years(0.5, 1000, 16), 86000.0);
}

TEST(Security, CounterLifetimeExceedsSystemLifetime) {
  // One transaction per nanosecond: > 500 years to overflow (paper §III-C).
  EXPECT_GT(counter_overflow_years(1e9), 500.0);
}

TEST(Security, SubstitutionMatchProbabilityNegligible) {
  EXPECT_LT(substitution_counter_match_probability(), 1e-18);
}

// ---------------------------------------------------------------- geometry

TEST(TreeGeometryTest, MatchesMetadataLayout) {
  // The analytical model and the simulator's layout must agree.
  for (unsigned arity : {8u, 64u, 128u}) {
    TreeGeometry geo;
    geo.data_bytes = 1ull << 30;
    geo.arity = arity;
    geo.counters_per_line = 64;
    secmem::MetadataLayout layout(
        secmem::SecurityParams::baseline_tree_ctr(arity, 64), geo.data_bytes);
    const auto levels = geo.levels();
    ASSERT_EQ(levels.size(), layout.tree_levels()) << "arity " << arity;
    for (unsigned l = 1; l <= layout.tree_levels(); ++l)
      EXPECT_EQ(levels[l - 1], layout.tree_nodes(l));
    EXPECT_EQ(geo.leaf_lines(), layout.counter_lines());
  }
}

TEST(TreeGeometryTest, SixteenGigabyteTreeDepths) {
  // The paper's 16GB memory: 64-ary counter tree is 3 stored levels;
  // the 8-ary hash tree over MACs is far deeper — the §V-A scalability
  // contrast.
  TreeGeometry ctr;
  ctr.data_bytes = 16ull << 30;
  ctr.arity = 64;
  EXPECT_EQ(ctr.walk_depth(), 3u);  // 4M -> 64K -> 1K -> 16 -> root

  TreeGeometry hash;
  hash.data_bytes = 16ull << 30;
  hash.arity = 8;
  hash.hash_tree_over_macs = true;
  EXPECT_GE(hash.walk_depth(), 7u);
}

TEST(TreeGeometryTest, CounterPackingChangesReach) {
  TreeGeometry g8, g64, g128;
  g8.data_bytes = g64.data_bytes = g128.data_bytes = 1ull << 30;
  g8.counters_per_line = 8;
  g64.counters_per_line = 64;
  g128.counters_per_line = 128;
  EXPECT_EQ(g8.leaf_reach_bytes(), 512u);
  EXPECT_EQ(g64.leaf_reach_bytes(), 4096u);
  EXPECT_EQ(g128.leaf_reach_bytes(), 8192u);
  EXPECT_EQ(g8.leaf_lines(), 8 * g64.leaf_lines());
}

TEST(TreeGeometryTest, MetadataOverheadShrinksWithPacking) {
  TreeGeometry g8, g128;
  g8.data_bytes = g128.data_bytes = 16ull << 30;
  g8.counters_per_line = 8;
  g128.counters_per_line = 128;
  EXPECT_GT(g8.metadata_bytes(), 10 * g128.metadata_bytes());
}

}  // namespace
}  // namespace secddr::analysis
