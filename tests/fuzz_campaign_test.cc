// Campaign-level properties of the adversarial fuzzer (`fuzz` label):
//
//  * a bounded default campaign finds ZERO undetected corruptions — the
//    PR 6 acceptance criterion (the full >= 10k-trial run is
//    bench/fuzz_campaign; this is the CI-bounded version);
//  * bit-reproducibility: same seed => byte-identical campaign log and
//    identical coverage, across worker counts, the per-cycle and
//    event-driven timing-leg loops, and SECDDR_MEM_THREADS=2;
//  * the checked-in regression traces under tests/regress/ — one per
//    engine bug the campaign forced — replay as detected-with-no-silent-
//    mismatch. Each would fail against the pre-fix engine: the first two
//    replayed as silent escapes, the third returned garbled plaintext
//    under a verifying MAC.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/campaign.h"

namespace secddr::fuzz {
namespace {

CampaignOptions bounded(std::uint64_t trials, unsigned jobs = 1) {
  CampaignOptions o;
  o.trials = trials;
  o.seed = 0x5ecdd6;
  o.jobs = jobs;
  return o;
}

TEST(FuzzCampaign, BoundedCampaignFindsNoEscapes) {
  Campaign c(bounded(1500));
  const CampaignResult res = c.run();
  EXPECT_TRUE(res.clean()) << res.log;
  EXPECT_GE(res.executions, 1500u);
  EXPECT_GT(res.coverage, 100u);  // coverage guidance is actually working
  EXPECT_GT(res.verdicts[static_cast<int>(Verdict::kDetected)], 0u);
}

TEST(FuzzCampaign, LogIsByteIdenticalAcrossWorkerCounts) {
  const CampaignResult a = Campaign(bounded(400, /*jobs=*/1)).run();
  const CampaignResult b = Campaign(bounded(400, /*jobs=*/4)).run();
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.verdicts, b.verdicts);
}

TEST(FuzzCampaign, LogIsByteIdenticalAcrossTimingLoopModes) {
  // Timing leg on: the coverage signature folds in per-channel engine +
  // DRAM counters, which the PR 2/4 determinism guarantee makes
  // bit-identical across the per-cycle loop, the event-driven loop, and
  // threaded channel ticking — so the campaign transcript cannot differ.
  CampaignOptions per_cycle = bounded(150);
  per_cycle.exec.timing_leg = true;
  per_cycle.exec.event_driven = false;

  CampaignOptions event_driven = per_cycle;
  event_driven.exec.event_driven = true;

  CampaignOptions threaded = event_driven;
  threaded.exec.mem_threads = 2;

  const CampaignResult a = Campaign(per_cycle).run();
  const CampaignResult b = Campaign(event_driven).run();
  const CampaignResult c = Campaign(threaded).run();
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(b.log, c.log);
  EXPECT_TRUE(a.clean()) << a.log;
}

TEST(FuzzCampaign, SameSeedSameLogAcrossRepeats) {
  const CampaignResult a = Campaign(bounded(300)).run();
  const CampaignResult b = Campaign(bounded(300)).run();
  EXPECT_EQ(a.log, b.log);
  // A different seed must explore differently (sanity check that the
  // seed actually steers the campaign).
  CampaignOptions other = bounded(300);
  other.seed = 0xfeedface;
  EXPECT_NE(Campaign(other).run().log, a.log);
}

// ---------------------------------------------------------------------------
// Checked-in regression traces: the PR 6 bugfix sweep.
// ---------------------------------------------------------------------------

class RegressReplay : public testing::TestWithParam<const char*> {};

TEST_P(RegressReplay, ReplaysDetectedWithNoSilentMismatch) {
  const std::string stem = std::string(SECDDR_REGRESS_DIR) + "/" + GetParam();
  const Outcome o = replay_saved(stem);
  // Pre-fix engine: mask_alert_stale and drop_inject_resync replayed as
  // silent ESCAPES (stale data under a verifying MAC, channel never
  // flagged); ctr_alert_garble replayed with mismatches != 0 (keystream
  // garbage under a verifying MAC after an alerting write). The fixed
  // engine detects all three with a consistent memory image.
  EXPECT_EQ(o.verdict, Verdict::kDetected)
      << GetParam() << ": " << to_string(o.verdict) << " " << o.note;
  EXPECT_EQ(o.mismatches, 0u) << GetParam() << ": " << o.note;
  EXPECT_EQ(o.silent_mismatches, 0u);
  EXPECT_GT(o.faults_fired, 0u) << GetParam() << ": plan never triggered";
}

INSTANTIATE_TEST_SUITE_P(Pr6BugfixSweep, RegressReplay,
                         testing::Values("mask_alert_stale",
                                         "drop_inject_resync",
                                         "ctr_alert_garble"));

}  // namespace
}  // namespace secddr::fuzz
