// Campaign-level properties of the adversarial fuzzer (`fuzz` label):
//
//  * a bounded default campaign finds ZERO undetected corruptions — the
//    PR 6 acceptance criterion (the full >= 10k-trial run is
//    bench/fuzz_campaign; this is the CI-bounded version);
//  * bit-reproducibility: same seed => byte-identical campaign log and
//    identical coverage, across worker counts, the per-cycle and
//    event-driven timing-leg loops, and epoch-decoupled channel threads
//    (mem_threads 2 and 4), plus executor-level snapshot/restore
//    determinism through epoch-advanced timing sessions;
//  * the checked-in regression traces under tests/regress/ — one per
//    engine bug the campaign forced — replay as detected-with-no-silent-
//    mismatch. Each would fail against the pre-fix engine: the first two
//    replayed as silent escapes, the third returned garbled plaintext
//    under a verifying MAC.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "fleet/checkpoint.h"
#include "fuzz/campaign.h"

namespace secddr::fuzz {
namespace {

CampaignOptions bounded(std::uint64_t trials, unsigned jobs = 1) {
  CampaignOptions o;
  o.trials = trials;
  o.seed = 0x5ecdd6;
  o.jobs = jobs;
  return o;
}

TEST(FuzzCampaign, BoundedCampaignFindsNoEscapes) {
  Campaign c(bounded(1500));
  const CampaignResult res = c.run();
  EXPECT_TRUE(res.clean()) << res.log;
  EXPECT_GE(res.executions, 1500u);
  EXPECT_GT(res.coverage, 100u);  // coverage guidance is actually working
  EXPECT_GT(res.verdicts[static_cast<int>(Verdict::kDetected)], 0u);
}

TEST(FuzzCampaign, LogIsByteIdenticalAcrossWorkerCounts) {
  const CampaignResult a = Campaign(bounded(400, /*jobs=*/1)).run();
  const CampaignResult b = Campaign(bounded(400, /*jobs=*/4)).run();
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.verdicts, b.verdicts);
}

TEST(FuzzCampaign, LogIsByteIdenticalAcrossTimingLoopModes) {
  // Timing leg on: the coverage signature folds in per-channel engine +
  // DRAM counters, which the PR 2/4 determinism guarantee makes
  // bit-identical across the per-cycle loop, the event-driven loop, and
  // threaded channel ticking — so the campaign transcript cannot differ.
  CampaignOptions per_cycle = bounded(150);
  per_cycle.exec.timing_leg = true;
  per_cycle.exec.event_driven = false;

  CampaignOptions event_driven = per_cycle;
  event_driven.exec.event_driven = true;

  CampaignOptions threaded = event_driven;
  threaded.exec.mem_threads = 2;

  // Fully threaded epoch-decoupled backend (the timing leg's config has
  // 2 channels, so 4 clamps to 2 workers crossing the epoch barrier).
  CampaignOptions threaded4 = event_driven;
  threaded4.exec.mem_threads = 4;

  const CampaignResult a = Campaign(per_cycle).run();
  const CampaignResult b = Campaign(event_driven).run();
  const CampaignResult c = Campaign(threaded).run();
  const CampaignResult d = Campaign(threaded4).run();
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(b.log, c.log);
  EXPECT_EQ(c.log, d.log);
  EXPECT_TRUE(a.clean()) << a.log;
}

TEST(FuzzCampaign, ExecutorDeterministicAfterRestoreWithEpochTiming) {
  // The executor snapshots each profile's attested master session and
  // restores it before every run; with the epoch-decoupled timing leg a
  // run advances the backend through multi-cycle windows, so this checks
  // restore lands the simulator in a state from which re-running an
  // earlier input reproduces its Outcome bit-for-bit — across loop modes
  // and thread counts too.
  Mutator m(0xEB0C);
  const FuzzInput first = m.random_input();
  FuzzInput second = m.random_input();
  for (int k = 0; k < 20; ++k) m.mutate(&second);

  ExecutorOptions epoch;
  epoch.timing_leg = true;
  epoch.event_driven = true;
  epoch.mem_threads = 2;
  Executor ex(epoch);
  const Outcome before = ex.run(first);
  ex.run(second);  // interleaved input advances + restores the sessions
  const Outcome after = ex.run(first);
  EXPECT_EQ(before.verdict, after.verdict);
  EXPECT_EQ(before.signature, after.signature);
  EXPECT_EQ(before.violations, after.violations);
  EXPECT_EQ(before.mismatches, after.mismatches);
  EXPECT_EQ(before.silent_mismatches, after.silent_mismatches);
  EXPECT_EQ(before.faults_fired, after.faults_fired);

  // The same inputs through the per-cycle serial reference leg: the
  // signature folds per-channel timing counters, so equality here is the
  // executor-level bit-identity gate for the epoch path.
  ExecutorOptions serial;
  serial.timing_leg = true;
  serial.event_driven = false;
  serial.mem_threads = 1;
  Executor ref(serial);
  const Outcome ref_first = ref.run(first);
  EXPECT_EQ(ref_first.signature, before.signature);
  EXPECT_EQ(ref_first.verdict, before.verdict);
}

TEST(FuzzCampaign, MasterSnapshotRoundTripsThroughCheckpointInFreshProcess) {
  // The master-session snapshot (the state every run() resets to) must
  // survive serialization through the fleet checkpoint container into a
  // FRESH PROCESS: the child imports the bytes the parent exported, re-
  // exports them (byte identity proves the codec is lossless, including
  // unordered_map content independent of per-process iteration order),
  // and replays the same input — its campaign signature must match the
  // parent's bit-for-bit even though the child runs the per-cycle serial
  // timing leg against the parent's epoch-threaded one.
  Mutator m(0xEB0C);
  const FuzzInput input = m.random_input();

  ExecutorOptions epoch;
  epoch.timing_leg = true;
  epoch.event_driven = true;
  epoch.mem_threads = 2;
  Executor ex(epoch);
  const Outcome parent_out = ex.run(input);
  const std::vector<std::uint8_t> payload = ex.master_snapshot(input.profile);
  ASSERT_FALSE(payload.empty());

  // A truncated payload must be rejected, never half-applied.
  EXPECT_THROW(
      ex.set_master_snapshot(input.profile, payload.data(),
                             payload.size() / 2),
      std::runtime_error);

  const std::string path =
      testing::TempDir() + "executor_master_snapshot.ckpt";
  fleet::checkpoint::write_file(path, /*config_hash=*/input.profile, payload);

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: everything before _exit; no gtest assertions propagate.
    ::close(fds[0]);
    std::uint8_t reply[15] = {0};
    try {
      std::uint64_t hash = 0;
      const std::vector<std::uint8_t> restored =
          fleet::checkpoint::read_file(path, &hash);
      ExecutorOptions serial_ref;
      serial_ref.timing_leg = true;
      serial_ref.event_driven = false;
      serial_ref.mem_threads = 1;
      Executor fresh(serial_ref);
      fresh.set_master_snapshot(input.profile, restored.data(),
                                restored.size());
      const bool reexport_identical =
          fresh.master_snapshot(input.profile) == restored;
      const Outcome out = fresh.run(input);
      reply[0] = hash == input.profile ? 1 : 0;
      store_le64(reply + 1, out.signature);
      reply[9] = static_cast<std::uint8_t>(out.verdict);
      reply[10] = static_cast<std::uint8_t>(out.violations);
      reply[11] = static_cast<std::uint8_t>(out.mismatches);
      reply[12] = static_cast<std::uint8_t>(out.silent_mismatches);
      reply[13] = static_cast<std::uint8_t>(out.faults_fired);
      reply[14] = reexport_identical ? 1 : 0;
    } catch (const std::exception&) {
      // reply stays zeroed; the parent's assertions report the failure.
    }
    std::size_t off = 0;
    while (off < sizeof reply) {
      const ssize_t n = ::write(fds[1], reply + off, sizeof reply - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::_exit(0);
  }
  ::close(fds[1]);
  std::uint8_t reply[15] = {0};
  std::size_t off = 0;
  while (off < sizeof reply) {
    const ssize_t n = ::read(fds[0], reply + off, sizeof reply - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_EQ(off, sizeof reply) << "child died before replying";

  EXPECT_EQ(reply[0], 1) << "container config hash did not round-trip";
  EXPECT_EQ(load_le64(reply + 1), parent_out.signature);
  EXPECT_EQ(reply[9], static_cast<std::uint8_t>(parent_out.verdict));
  EXPECT_EQ(reply[10], static_cast<std::uint8_t>(parent_out.violations));
  EXPECT_EQ(reply[11], static_cast<std::uint8_t>(parent_out.mismatches));
  EXPECT_EQ(reply[12],
            static_cast<std::uint8_t>(parent_out.silent_mismatches));
  EXPECT_EQ(reply[13], static_cast<std::uint8_t>(parent_out.faults_fired));
  EXPECT_EQ(reply[14], 1) << "import -> re-export was not byte-identical";
  std::remove(path.c_str());
}

TEST(FuzzCampaign, SameSeedSameLogAcrossRepeats) {
  const CampaignResult a = Campaign(bounded(300)).run();
  const CampaignResult b = Campaign(bounded(300)).run();
  EXPECT_EQ(a.log, b.log);
  // A different seed must explore differently (sanity check that the
  // seed actually steers the campaign).
  CampaignOptions other = bounded(300);
  other.seed = 0xfeedface;
  EXPECT_NE(Campaign(other).run().log, a.log);
}

// ---------------------------------------------------------------------------
// Checked-in regression traces: the PR 6 bugfix sweep.
// ---------------------------------------------------------------------------

class RegressReplay : public testing::TestWithParam<const char*> {};

TEST_P(RegressReplay, ReplaysDetectedWithNoSilentMismatch) {
  const std::string stem = std::string(SECDDR_REGRESS_DIR) + "/" + GetParam();
  const Outcome o = replay_saved(stem);
  // Pre-fix engine: mask_alert_stale and drop_inject_resync replayed as
  // silent ESCAPES (stale data under a verifying MAC, channel never
  // flagged); ctr_alert_garble replayed with mismatches != 0 (keystream
  // garbage under a verifying MAC after an alerting write). The fixed
  // engine detects all three with a consistent memory image.
  EXPECT_EQ(o.verdict, Verdict::kDetected)
      << GetParam() << ": " << to_string(o.verdict) << " " << o.note;
  EXPECT_EQ(o.mismatches, 0u) << GetParam() << ": " << o.note;
  EXPECT_EQ(o.silent_mismatches, 0u);
  EXPECT_GT(o.faults_fired, 0u) << GetParam() << ": plan never triggered";
}

INSTANTIATE_TEST_SUITE_P(Pr6BugfixSweep, RegressReplay,
                         testing::Values("mask_alert_stale",
                                         "drop_inject_resync",
                                         "ctr_alert_garble"));

}  // namespace
}  // namespace secddr::fuzz
