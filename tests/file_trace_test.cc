// Trace-file round trip and FCFS-vs-FR-FCFS scheduler ablation checks.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "common/random.h"
#include "dram/controller.h"
#include "sim/file_trace.h"

namespace secddr::sim {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(FileTrace, RoundTrip) {
  const std::string path = temp_path("roundtrip.trace");
  std::vector<TraceRecord> records = {
      {12, false, 0x7f001040}, {0, true, 0x7f001080}, {3, false, 0x1000}};
  ASSERT_TRUE(write_trace_file(path, records));
  FileTrace trace(path);
  EXPECT_EQ(trace.record_count(), records.size());
  for (const auto& expect : records) {
    TraceRecord r;
    ASSERT_TRUE(trace.next(r));
    EXPECT_EQ(r.gap, expect.gap);
    EXPECT_EQ(r.is_write, expect.is_write);
    EXPECT_EQ(r.addr, expect.addr);
  }
  TraceRecord r;
  EXPECT_FALSE(trace.next(r));
}

TEST(FileTrace, LoopModeWrapsAround) {
  const std::string path = temp_path("loop.trace");
  ASSERT_TRUE(write_trace_file(path, {{1, false, 0x40}, {2, true, 0x80}}));
  FileTrace trace(path, /*loop=*/true);
  TraceRecord r;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(trace.next(r));
  EXPECT_EQ(r.addr, 0x80u);  // 10th record = second entry again
}

TEST(FileTrace, CommentsAndBlanksIgnored) {
  const std::string path = temp_path("comments.trace");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# header comment\n\n5 R 0x40  # trailing comment\n\n", f);
  std::fclose(f);
  FileTrace trace(path);
  EXPECT_EQ(trace.record_count(), 1u);
}

TEST(FileTrace, MissingFileThrows) {
  EXPECT_THROW(FileTrace("/nonexistent/path.trace"), std::runtime_error);
}

TEST(FileTrace, LongLineRaisesParseErrorInsteadOfSplitting) {
  // Regression: a line longer than the fgets buffer used to be silently
  // split and could parse as two records — here "1 R 0x40 <padding>
  // 2 W 0x80" would have yielded records at 0x40 *and* 0x80.
  const std::string path = temp_path("longline.trace");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1 R 0x40", f);
  for (int i = 0; i < 300; ++i) std::fputc(' ', f);
  std::fputs("2 W 0x80\n3 R 0xC0\n", f);
  std::fclose(f);
  try {
    FileTrace bad_trace(path);
    FAIL() << "overlong line was silently split";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path + ":1"), std::string::npos)
        << e.what();
  }
}

TEST(FileTrace, UnterminatedFinalLineParses) {
  // A last line without a trailing newline is legal (and must not be
  // confused with the overlong-line case above).
  const std::string path = temp_path("noeol.trace");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("5 R 0x40\n7 W 0x80", f);
  std::fclose(f);
  FileTrace trace(path);
  EXPECT_EQ(trace.record_count(), 2u);
}

TEST(FileTrace, MalformedLineThrows) {
  const std::string path = temp_path("bad.trace");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("5 X 0x40\n", f);
  std::fclose(f);
  EXPECT_THROW({ FileTrace bad_trace(path); }, std::runtime_error);
}

// ------------------------------------------------------- scheduler

TEST(Scheduler, FrFcfsBeatsFcfsOnRowLocality) {
  // Interleave two row streams: FR-FCFS reorders to exploit open rows,
  // strict FCFS ping-pongs between rows.
  auto run = [](dram::SchedulingPolicy policy) {
    dram::Geometry g;
    g.rows_per_bank = 1 << 10;
    dram::Controller c(g, dram::Timings::ddr4_3200(), 64, 64, policy);
    std::uint64_t tag = 0;
    Cycle cyc = 0;
    unsigned issued = 0;
    // Two conflicting row streams in the same bank. The XOR bank
    // permutation folds low row bits into the bank, so the second stream
    // sits 16 rows away (16 = bg_bits * bank_bits span) to stay put.
    const Addr row_stride = static_cast<Addr>(g.columns_per_row) * kLineSize *
                            g.bank_groups * g.banks_per_group * g.ranks;
    while (issued < 128) {
      if (c.can_accept_read()) {
        const Addr base = (issued % 2) ? row_stride * 16 : 0;
        c.enqueue(base + (issued / 2) * kLineSize, false, ++tag, cyc);
        ++issued;
      }
      c.tick(cyc);
      c.completions().clear();
      ++cyc;
    }
    while (c.pending() > 0 && cyc < 1'000'000) {
      c.tick(cyc);
      c.completions().clear();
      ++cyc;
    }
    return std::pair{cyc, c.stats().row_hit_rate()};
  };
  const auto [fr_cycles, fr_hits] = run(dram::SchedulingPolicy::kFrFcfs);
  const auto [fcfs_cycles, fcfs_hits] = run(dram::SchedulingPolicy::kFcfs);
  EXPECT_GT(fr_hits, fcfs_hits);
  EXPECT_LT(fr_cycles, fcfs_cycles);
}

TEST(Scheduler, FcfsStillCompletesEverything) {
  dram::Geometry g;
  g.rows_per_bank = 1 << 10;
  dram::Controller c(g, dram::Timings::ddr4_3200(), 64, 64,
                     dram::SchedulingPolicy::kFcfs);
  Xoshiro256 rng(5);
  std::uint64_t tag = 0;
  unsigned enqueued = 0, completed = 0;
  Cycle cyc = 0;
  for (; cyc < 60000; ++cyc) {
    if (rng.chance(0.2) && c.can_accept_read()) {
      c.enqueue(line_base(rng.next() % g.capacity_bytes()), false, ++tag, cyc);
      ++enqueued;
    }
    c.tick(cyc);
    completed += c.completions().size();
    c.completions().clear();
  }
  while (c.pending() > 0 && cyc < 2'000'000) {
    c.tick(cyc);
    completed += c.completions().size();
    c.completions().clear();
    ++cyc;
  }
  EXPECT_EQ(completed, enqueued);
}

}  // namespace
}  // namespace secddr::sim
