// End-to-end trace-source determinism: the same recorded records must
// produce a bit-identical RunResult whether they are driven from memory
// (VectorTrace), from the legacy text format (FileTrace), or streamed
// from the binary format with the prefetch thread on (StreamFileTrace) —
// in both the per-cycle and the event-driven simulation loops. The trace
// subsystem is pure plumbing; any divergence here is a decode bug.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "secmem/params.h"
#include "sim/file_trace.h"
#include "sim/stream_trace.h"
#include "sim/system.h"
#include "sim/trace_codec.h"
#include "workloads/generator.h"
#include "workloads/workload.h"

namespace secddr::sim {
namespace {

constexpr unsigned kCores = 2;
constexpr std::uint64_t kInstructions = 3000;
constexpr std::uint64_t kWarmup = 800;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Records one core's synthetic trace with enough records to cover the
/// whole warmup + measured budget (each record covers gap+1
/// instructions), so every source ends by budget, never by exhaustion.
std::vector<TraceRecord> record_core(const workloads::WorkloadDesc& desc,
                                     unsigned core) {
  workloads::SyntheticTrace src(desc, core);
  std::vector<TraceRecord> records;
  std::uint64_t covered = 0;
  TraceRecord r;
  while (covered < kWarmup + kInstructions + 64 && src.next(r)) {
    records.push_back(r);
    covered += static_cast<std::uint64_t>(r.gap) + 1;
  }
  return records;
}

RunResult run_with(const secmem::SecurityParams& sec, bool event_driven,
                   std::vector<TraceSource*> traces) {
  SystemConfig cfg;
  cfg.mem.cores = kCores;
  cfg.security = sec;
  cfg.data_bytes = 4ull << 30;  // two cores at 2GB trace stride
  cfg.event_driven = event_driven;
  System sys(cfg, std::move(traces));
  return sys.run(kInstructions, 2'000'000'000, kWarmup);
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t i = 0; i < a.cores.size(); ++i) {
    SCOPED_TRACE("core " + std::to_string(i));
    EXPECT_EQ(a.cores[i].instructions, b.cores[i].instructions);
    EXPECT_EQ(a.cores[i].cycles, b.cores[i].cycles);
    EXPECT_EQ(a.cores[i].loads, b.cores[i].loads);
    EXPECT_EQ(a.cores[i].stores, b.cores[i].stores);
    EXPECT_EQ(a.cores[i].load_stall_cycles, b.cores[i].load_stall_cycles);
  }
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.hit_cycle_limit, b.hit_cycle_limit);
  EXPECT_EQ(a.total_ipc, b.total_ipc);
  EXPECT_EQ(a.llc_mpki, b.llc_mpki);
  EXPECT_EQ(a.metadata_miss_rate, b.metadata_miss_rate);
  EXPECT_EQ(a.metadata_accesses, b.metadata_accesses);

  EXPECT_EQ(a.mem.l1_accesses, b.mem.l1_accesses);
  EXPECT_EQ(a.mem.l1_misses, b.mem.l1_misses);
  EXPECT_EQ(a.mem.llc_demand_accesses, b.mem.llc_demand_accesses);
  EXPECT_EQ(a.mem.llc_demand_misses, b.mem.llc_demand_misses);
  EXPECT_EQ(a.mem.llc_writebacks, b.mem.llc_writebacks);
  EXPECT_EQ(a.mem.prefetch_fills, b.mem.prefetch_fills);

  EXPECT_EQ(a.engine.data_reads, b.engine.data_reads);
  EXPECT_EQ(a.engine.data_writes, b.engine.data_writes);
  EXPECT_EQ(a.engine.counter_fetches, b.engine.counter_fetches);
  EXPECT_EQ(a.engine.mac_line_fetches, b.engine.mac_line_fetches);
  EXPECT_EQ(a.engine.tree_node_fetches, b.engine.tree_node_fetches);
  EXPECT_EQ(a.engine.meta_writebacks, b.engine.meta_writebacks);

  EXPECT_EQ(a.dram.reads_enqueued, b.dram.reads_enqueued);
  EXPECT_EQ(a.dram.writes_enqueued, b.dram.writes_enqueued);
  EXPECT_EQ(a.dram.reads_completed, b.dram.reads_completed);
  EXPECT_EQ(a.dram.writes_completed, b.dram.writes_completed);
  EXPECT_EQ(a.dram.row_hits, b.dram.row_hits);
  EXPECT_EQ(a.dram.row_misses, b.dram.row_misses);
  EXPECT_EQ(a.dram.activates, b.dram.activates);
  EXPECT_EQ(a.dram.precharges, b.dram.precharges);
  EXPECT_EQ(a.dram.refreshes, b.dram.refreshes);
  EXPECT_EQ(a.dram.write_forwards, b.dram.write_forwards);
  EXPECT_EQ(a.dram.data_bus_busy_cycles, b.dram.data_bus_busy_cycles);
  EXPECT_EQ(a.dram.total_read_latency, b.dram.total_read_latency);
}

TEST(TraceSourceDeterminism, VectorTextAndStreamBitIdentical) {
  for (const char* wl : {"mcf", "lbm"}) {
    const auto* desc = workloads::find(wl);
    ASSERT_NE(desc, nullptr);
    std::vector<std::vector<TraceRecord>> recorded;
    std::vector<std::string> text_paths, binary_paths;
    for (unsigned c = 0; c < kCores; ++c) {
      recorded.push_back(record_core(*desc, c));
      text_paths.push_back(
          temp_path(std::string(wl) + ".core" + std::to_string(c) + ".txt"));
      binary_paths.push_back(temp_path(std::string(wl) + ".core" +
                                       std::to_string(c) + ".strace"));
      ASSERT_TRUE(write_trace_file(text_paths.back(), recorded.back()));
      // A small block count forces multi-block streaming + prefetch
      // handoffs inside the run.
      TraceWriter w(binary_paths.back(), /*block_records=*/128);
      for (const auto& r : recorded.back()) w.append(r);
      w.close();
    }

    for (const auto& sec : {secmem::SecurityParams::secddr_ctr(),
                            secmem::SecurityParams::baseline_tree_ctr()}) {
      for (bool event_driven : {false, true}) {
        SCOPED_TRACE(std::string(wl) +
                     (event_driven ? " event-driven" : " per-cycle"));
        std::vector<VectorTrace> vec;
        vec.reserve(kCores);
        for (unsigned c = 0; c < kCores; ++c) vec.emplace_back(recorded[c]);
        const RunResult vector_run =
            run_with(sec, event_driven, {&vec[0], &vec[1]});

        std::vector<std::unique_ptr<TraceSource>> text, stream;
        for (unsigned c = 0; c < kCores; ++c) {
          text.push_back(std::make_unique<FileTrace>(text_paths[c]));
          stream.push_back(std::make_unique<StreamFileTrace>(binary_paths[c]));
        }
        {
          SCOPED_TRACE("legacy text FileTrace");
          expect_identical(vector_run, run_with(sec, event_driven,
                                                {text[0].get(), text[1].get()}));
        }
        {
          SCOPED_TRACE("binary StreamFileTrace");
          expect_identical(
              vector_run,
              run_with(sec, event_driven, {stream[0].get(), stream[1].get()}));
        }
      }
    }
  }
}

TEST(TraceSourceDeterminism, OpenTraceLoopMatchesUnlooped) {
  // A looping stream replay of a full-coverage recording must behave
  // exactly like the unlooped one (the budget ends the run before any
  // wraparound), pinning the factory + loop plumbing end to end.
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  std::vector<std::vector<TraceRecord>> recorded;
  std::vector<std::string> paths;
  for (unsigned c = 0; c < kCores; ++c) {
    recorded.push_back(record_core(*desc, c));
    paths.push_back(temp_path("loop.core" + std::to_string(c) + ".strace"));
    TraceWriter w(paths[c], 128);
    for (const auto& r : recorded[c]) w.append(r);
    w.close();
  }
  const auto sec = secmem::SecurityParams::secddr_ctr();
  std::vector<VectorTrace> vec;
  vec.reserve(kCores);
  for (unsigned c = 0; c < kCores; ++c) vec.emplace_back(recorded[c]);
  const RunResult vector_run =
      run_with(sec, /*event_driven=*/true, {&vec[0], &vec[1]});
  std::vector<std::unique_ptr<TraceSource>> looped;
  for (unsigned c = 0; c < kCores; ++c)
    looped.push_back(open_trace(paths[c], /*loop=*/true));
  expect_identical(vector_run, run_with(sec, /*event_driven=*/true,
                                        {looped[0].get(), looped[1].get()}));
}

}  // namespace
}  // namespace secddr::sim
