// Parameterized property sweeps across the configuration space:
//  - the attack-detection matrix holds for every (encryption x placement)
//    combination of the full SecDDR design,
//  - DRAM timing invariants hold for every speed grade and burst config,
//  - the security engine conserves traffic for every named configuration.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/random.h"
#include "core/attack.h"
#include "core/session.h"
#include "dram/system.h"
#include "secmem/model.h"

namespace secddr {
namespace {

// ===================================================================
// Attack-detection matrix: encryption mode x logic placement.
// The full design (eWCRC on) must detect bus-level attacks in EVERY
// combination — the trusted-DIMM placement only differs for on-DIMM
// adversaries, and XTS vs CTR must not change detection at all.
// ===================================================================

using AttackParams = std::tuple<core::DataEncryption, core::LogicPlacement>;

class AttackMatrix : public ::testing::TestWithParam<AttackParams> {
 protected:
  std::unique_ptr<core::SecureMemorySession> make_session(std::uint64_t seed) {
    core::SessionConfig cfg;
    cfg.dimm.geometry.ranks = 2;
    cfg.dimm.geometry.bank_groups = 2;
    cfg.dimm.geometry.banks_per_group = 2;
    cfg.dimm.geometry.rows_per_bank = 16;
    cfg.dimm.geometry.columns_per_row = 8;
    cfg.encryption = std::get<0>(GetParam());
    cfg.dimm.placement = std::get<1>(GetParam());
    cfg.seed = seed;
    return core::SecureMemorySession::create(cfg);
  }
};

TEST_P(AttackMatrix, RoundTripWorks) {
  auto s = make_session(1);
  ASSERT_NE(s, nullptr);
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    const Addr a = line_base(rng.next() % s->capacity());
    CacheLine v;
    for (auto& b : v.bytes) b = static_cast<std::uint8_t>(rng.next());
    ASSERT_EQ(s->write(a, v), core::Violation::kNone);
    const auto r = s->read(a);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.data, v);
  }
}

TEST_P(AttackMatrix, BusReplayDetected) {
  auto s = make_session(2);
  ASSERT_NE(s, nullptr);
  core::BusReplayInterposer attacker;
  s->set_bus_interposer(&attacker);
  const Addr t = 0x40;
  const auto d = s->controller().mapping().decode(t);
  s->write(t, CacheLine::filled(0x01));
  ASSERT_TRUE(s->read(t).ok());
  s->write(t, CacheLine::filled(0x02));
  attacker.arm(d.rank, d.bank_group, d.bank, static_cast<unsigned>(d.row),
               d.column);
  EXPECT_FALSE(s->read(t).ok());
}

TEST_P(AttackMatrix, DroppedWriteDetected) {
  auto s = make_session(3);
  ASSERT_NE(s, nullptr);
  core::DropWriteInterposer attacker;
  s->set_bus_interposer(&attacker);
  const Addr t = 0x80;
  const auto d = s->controller().mapping().decode(t);
  s->write(t, CacheLine::filled(0x01));
  attacker.arm(d.rank, d.bank_group, d.bank, d.column);
  s->write(t, CacheLine::filled(0x02));
  EXPECT_FALSE(s->read(t).ok());
}

TEST_P(AttackMatrix, WriteToReadConversionDetected) {
  auto s = make_session(4);
  ASSERT_NE(s, nullptr);
  core::WriteToReadInterposer attacker;
  s->set_bus_interposer(&attacker);
  const Addr t = 0xC0;
  const auto d = s->controller().mapping().decode(t);
  s->write(t, CacheLine::filled(0x01));
  attacker.arm(d.rank, d.bank_group, d.bank, d.column);
  s->write(t, CacheLine::filled(0x02));
  EXPECT_FALSE(s->read(t).ok());
}

TEST_P(AttackMatrix, RowRedirectAlertsAtDevice) {
  auto s = make_session(5);
  ASSERT_NE(s, nullptr);
  core::RowRedirectInterposer attacker;
  s->set_bus_interposer(&attacker);
  const Addr t = 0x40;
  const Addr conflict = t + 8 * 64 * 8;  // next row, same bank
  const auto d = s->controller().mapping().decode(t);
  s->write(t, CacheLine::filled(0xAA));
  s->write(conflict, CacheLine::filled(0x55));
  attacker.arm(d.rank, d.bank_group, d.bank, d.row, d.row + 1);
  EXPECT_EQ(s->write(t, CacheLine::filled(0xBB)),
            core::Violation::kWriteAlert);
}

TEST_P(AttackMatrix, SubstitutionDetected) {
  auto s = make_session(6);
  ASSERT_NE(s, nullptr);
  const Addr t = 0x100;
  s->write(t, CacheLine::filled(0x01));
  const auto frozen = s->snapshot_dimm();
  s->write(t, CacheLine::filled(0x02));
  s->substitute_dimm(frozen);
  EXPECT_FALSE(s->read(t).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, AttackMatrix,
    ::testing::Combine(
        ::testing::Values(core::DataEncryption::kXts,
                          core::DataEncryption::kCtr),
        ::testing::Values(core::LogicPlacement::kEccChip,
                          core::LogicPlacement::kEccDataBuffer)),
    [](const ::testing::TestParamInfo<AttackParams>& info) {
      std::string name =
          std::get<0>(info.param) == core::DataEncryption::kXts ? "Xts"
                                                                : "Ctr";
      name += std::get<1>(info.param) == core::LogicPlacement::kEccChip
                  ? "EccChip"
                  : "EccDb";
      return name;
    });

// ===================================================================
// DRAM timing invariants across speed grades and burst configurations.
// ===================================================================

class DramSweep : public ::testing::TestWithParam<dram::Timings> {};

TEST_P(DramSweep, RandomTrafficDrainsAndRespectsBusAccounting) {
  const dram::Timings t = GetParam();
  dram::Geometry g;
  g.rows_per_bank = 1 << 10;
  dram::Controller c(g, t);
  Xoshiro256 rng(7);
  std::uint64_t tag = 0;
  std::uint64_t enqueued = 0, completed = 0;
  Cycle cyc = 0;
  for (; cyc < 80000; ++cyc) {
    if (rng.chance(0.3)) {
      const bool w = rng.chance(0.4);
      const Addr a = line_base(rng.next() % g.capacity_bytes());
      if ((w && c.can_accept_write()) || (!w && c.can_accept_read())) {
        ASSERT_TRUE(c.enqueue(a, w, ++tag, cyc));
        ++enqueued;
      }
    }
    c.tick(cyc);
    completed += c.completions().size();
    c.completions().clear();
  }
  while (c.pending() > 0 && cyc < 2'000'000) {
    c.tick(cyc);
    completed += c.completions().size();
    c.completions().clear();
    ++cyc;
  }
  EXPECT_EQ(c.pending(), 0u) << "requests stranded";
  EXPECT_EQ(completed, enqueued);
  // The data bus cannot be busy longer than time itself.
  EXPECT_LE(c.stats().data_bus_busy_cycles, cyc);
  // Every burst occupies its configured length.
  const std::uint64_t expect_busy =
      (c.stats().reads_completed - c.stats().write_forwards) *
          t.read_burst_cycles +
      c.stats().writes_completed * t.write_burst_cycles -
      // merged writes never hit the bus; subtract their phantom bursts
      (c.stats().writes_enqueued - c.stats().writes_completed) * 0;
  EXPECT_LE(c.stats().data_bus_busy_cycles, expect_busy);
}

TEST_P(DramSweep, ColdReadLatencyAtLeastActRcdClBl) {
  const dram::Timings t = GetParam();
  dram::Geometry g;
  g.rows_per_bank = 1 << 10;
  dram::Controller c(g, t);
  ASSERT_TRUE(c.enqueue(0x40000, false, 1, 0));
  Cycle cyc = 0;
  dram::Completion done{};
  bool have = false;
  while (!have && cyc < 100000) {
    c.tick(cyc);
    for (auto& comp : c.completions()) {
      done = comp;
      have = true;
    }
    c.completions().clear();
    ++cyc;
  }
  ASSERT_TRUE(have);
  EXPECT_GE(done.finish - done.arrival,
            static_cast<Cycle>(t.tRCD + t.tCL + t.read_burst_cycles));
}

INSTANTIATE_TEST_SUITE_P(
    SpeedGrades, DramSweep,
    ::testing::Values(dram::Timings::ddr4_3200(),
                      dram::Timings::ddr4_3200().with_ewcrc_burst(),
                      dram::Timings::ddr4_2400(),
                      dram::Timings::ddr4_2400().with_ewcrc_burst(),
                      dram::Timings::ddr5_4800()),
    [](const ::testing::TestParamInfo<dram::Timings>& info) {
      std::string n = info.param.name;
      for (auto& ch : n)
        if (ch == '-') ch = '_';
      if (info.param.write_burst_cycles != info.param.read_burst_cycles)
        n += "_ewcrc";
      return n;
    });

// ===================================================================
// Security-engine conservation across every named configuration.
// ===================================================================

class EngineSweep : public ::testing::TestWithParam<secmem::SecurityParams> {};

TEST_P(EngineSweep, TrafficConservationUnderRandomLoad) {
  const secmem::SecurityParams params = GetParam();
  const secmem::MetadataLayout layout(params, 1ull << 30);
  dram::Geometry g;
  g.rows_per_bank = 1 << 14;
  dram::DramSystem dramsys(g, dram::Timings::ddr4_3200(), 3200.0);
  secmem::SecurityEngine engine(params, layout, dramsys);

  Xoshiro256 rng(11);
  Cycle now = 0;
  std::uint64_t reads_started = 0, writes_started = 0, reads_ready = 0;
  for (int op = 0; op < 2000; ++op) {
    const Addr a = line_base(rng.next() % (1ull << 30));
    if (rng.chance(0.3)) {
      engine.start_write(a, now);
      ++writes_started;
    } else {
      engine.start_read(a, op, now);
      ++reads_started;
    }
    // Advance a few cycles between operations.
    for (int i = 0; i < 4; ++i) {
      ++now;
      dramsys.tick_core_cycle();
      engine.tick(now);
      reads_ready += engine.ready().size();
      engine.ready().clear();
    }
  }
  while (engine.outstanding() > 0 && now < 50'000'000) {
    ++now;
    dramsys.tick_core_cycle();
    engine.tick(now);
    reads_ready += engine.ready().size();
    engine.ready().clear();
  }
  EXPECT_EQ(engine.outstanding(), 0u) << "engine wedged";
  EXPECT_EQ(reads_ready, reads_started) << "lost or duplicated reads";
  EXPECT_EQ(engine.stats().data_reads, reads_started);
  EXPECT_EQ(engine.stats().data_writes, writes_started);

  // Config-specific traffic shape.
  if (params.enc == secmem::Encryption::kXts) {
    EXPECT_EQ(engine.stats().counter_fetches, 0u);
  } else {
    EXPECT_GT(engine.stats().counter_fetches, 0u);
  }
  if (params.rap != secmem::Rap::kIntegrityTree) {
    EXPECT_EQ(engine.stats().tree_node_fetches, 0u);
  }
  if (params.macs_in_ecc) {
    EXPECT_EQ(engine.stats().mac_line_fetches, 0u);
  }
  // DRAM conservation: every engine-issued read reached the controller.
  EXPECT_EQ(dramsys.stats().reads_enqueued,
            engine.stats().data_reads + engine.stats().meta_reads());
}

INSTANTIATE_TEST_SUITE_P(
    NamedConfigs, EngineSweep,
    ::testing::Values(secmem::SecurityParams::baseline_tree_ctr(),
                      secmem::SecurityParams::baseline_tree_ctr(128, 128),
                      secmem::SecurityParams::secddr_ctr(),
                      secmem::SecurityParams::secddr_ctr(8),
                      secmem::SecurityParams::encrypt_only_ctr(),
                      secmem::SecurityParams::secddr_xts(),
                      secmem::SecurityParams::encrypt_only_xts(),
                      secmem::SecurityParams::invisimem(
                          secmem::Encryption::kXts),
                      secmem::SecurityParams::invisimem(
                          secmem::Encryption::kCounterMode),
                      secmem::SecurityParams::hash_tree8_xts()),
    [](const ::testing::TestParamInfo<secmem::SecurityParams>& info) {
      std::string n = info.param.name;
      for (auto& ch : n)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return n;
    });

}  // namespace
}  // namespace secddr
