// §VIII extension: CCCA obfuscation (traffic-oblivious command/address).
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/random.h"
#include "core/attack.h"
#include "core/session.h"

namespace secddr::core {
namespace {

SessionConfig obf_config(std::uint64_t seed, bool obfuscate = true) {
  SessionConfig cfg;
  cfg.dimm.geometry.ranks = 2;
  cfg.dimm.geometry.bank_groups = 2;
  cfg.dimm.geometry.banks_per_group = 2;
  cfg.dimm.geometry.rows_per_bank = 16;
  cfg.dimm.geometry.columns_per_row = 8;
  cfg.dimm.cca_obfuscation = obfuscate;
  cfg.seed = seed;
  return cfg;
}

// Records the raw row values an on-bus observer sees in ACTIVATEs.
class RowObserver : public BusInterposer {
 public:
  bool on_activate(ActivateCmd& cmd) override {
    rows.push_back(cmd.row);
    return true;
  }
  std::vector<std::uint64_t> rows;
};

TEST(CcaObfuscation, RoundTripWorks) {
  auto s = SecureMemorySession::create(obf_config(1));
  ASSERT_NE(s, nullptr);
  Xoshiro256 rng(2);
  std::unordered_map<Addr, CacheLine> shadow;
  for (int i = 0; i < 500; ++i) {
    const Addr a = line_base(rng.next() % s->capacity());
    if (rng.chance(0.5) || !shadow.count(a)) {
      CacheLine v;
      for (auto& b : v.bytes) b = static_cast<std::uint8_t>(rng.next());
      ASSERT_EQ(s->write(a, v), Violation::kNone);
      shadow[a] = v;
    } else {
      const auto r = s->read(a);
      ASSERT_TRUE(r.ok()) << "op " << i;
      ASSERT_EQ(r.data, shadow[a]);
    }
  }
}

TEST(CcaObfuscation, RepeatedActivationsOfSameRowLookDifferentOnTheBus) {
  auto s = SecureMemorySession::create(obf_config(3));
  ASSERT_NE(s, nullptr);
  RowObserver observer;
  s->set_bus_interposer(&observer);

  // Ping-pong between two rows of the same bank: each re-activation of
  // row 0 gets a fresh command pad.
  const Addr row0 = 0x0;
  const Addr row1 = 0x0 + 8 * 64 * 8;  // next row, same bank
  for (int i = 0; i < 8; ++i) {
    s->write(row0, CacheLine::filled(1));
    s->write(row1, CacheLine::filled(2));
  }
  ASSERT_GE(observer.rows.size(), 8u);
  std::set<std::uint64_t> distinct(observer.rows.begin(),
                                   observer.rows.end());
  // 16 activations over 2 true rows: with pads they should take many
  // distinct wire values (collisions possible but few in 16 rows of 16).
  EXPECT_GT(distinct.size(), 4u)
      << "wire rows must be unlinkable to true rows";
}

TEST(CcaObfuscation, WithoutObfuscationRowsAreVisible) {
  auto s = SecureMemorySession::create(obf_config(4, /*obfuscate=*/false));
  ASSERT_NE(s, nullptr);
  RowObserver observer;
  s->set_bus_interposer(&observer);
  const Addr row0 = 0x0;
  const Addr row1 = 0x0 + 8 * 64 * 8;
  for (int i = 0; i < 8; ++i) {
    s->write(row0, CacheLine::filled(1));
    s->write(row1, CacheLine::filled(2));
  }
  std::set<std::uint64_t> distinct(observer.rows.begin(),
                                   observer.rows.end());
  EXPECT_EQ(distinct.size(), 2u) << "plaintext CCCA leaks the row stream";
}

TEST(CcaObfuscation, BlindRowTamperIsStillCaughtByEwcrc) {
  // The attacker can no longer TARGET a row (it cannot decode the bus),
  // but it can still flip ciphertext bits blindly. The redirected write
  // then lands in an attacker-unknown row and the eWCRC check fires.
  auto s = SecureMemorySession::create(obf_config(5));
  ASSERT_NE(s, nullptr);

  class BlindFlip : public BusInterposer {
   public:
    bool on_activate(ActivateCmd& cmd) override {
      if (armed) {
        cmd.row ^= 0x5;  // blind mutation of the encrypted field
        armed = false;
      }
      return true;
    }
    bool armed = false;
  } attacker;
  s->set_bus_interposer(&attacker);

  const Addr t = 0x40;
  const Addr conflict = t + 8 * 64 * 8;
  s->write(t, CacheLine::filled(0xAA));
  s->write(conflict, CacheLine::filled(0x55));  // close t's row
  attacker.armed = true;
  // The tampered ACT opens a wrong row; the following write alerts.
  EXPECT_EQ(s->write(t, CacheLine::filled(0xBB)), Violation::kWriteAlert);
}

TEST(CcaObfuscation, DroppedActivateDesynchronizesCommandPads) {
  // Command pads advance per command on both ends; swallowing an ACT
  // leaves the device decoding every later command with the wrong pad.
  auto s = SecureMemorySession::create(obf_config(6));
  ASSERT_NE(s, nullptr);

  class DropOneActivate : public BusInterposer {
   public:
    bool on_activate(ActivateCmd&) override {
      if (armed) {
        armed = false;
        return false;
      }
      return true;
    }
    bool armed = false;
  } attacker;
  s->set_bus_interposer(&attacker);

  s->write(0x40, CacheLine::filled(0x01));
  ASSERT_TRUE(s->read(0x40).ok());
  attacker.armed = true;
  // This write needs an ACT (different row); the ACT is dropped.
  const Addr other_row = 0x40 + 8 * 64 * 8;
  (void)s->write(other_row, CacheLine::filled(0x02));
  // From here on the device misdecodes commands: accesses fail closed.
  bool any_violation = false;
  for (int i = 0; i < 4; ++i) {
    const auto r = s->read(0x40);
    any_violation = any_violation || !r.ok();
  }
  EXPECT_TRUE(any_violation);
}

TEST(CcaObfuscation, CountersAdvanceIdenticallyOnBothEnds) {
  auto cfg = obf_config(7);
  cfg.clear_memory = true;  // every line carries a valid MAC from boot
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  Xoshiro256 rng(8);
  for (int i = 0; i < 200; ++i) {
    const Addr a = line_base(rng.next() % s->capacity());
    if (rng.chance(0.5))
      s->write(a, CacheLine::filled(static_cast<std::uint8_t>(i)));
    else
      ASSERT_TRUE(s->read(a).ok());
  }
  // No desync on a benign channel (transaction counters checked via the
  // session test; command-pad sync is implied by zero violations here).
  EXPECT_EQ(s->stats().mac_mismatches, 0u);
}

}  // namespace
}  // namespace secddr::core
