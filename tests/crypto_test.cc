// Crypto substrate tests: published test vectors plus property tests.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "crypto/aes.h"
#include "crypto/aes_ctr.h"
#include "crypto/aes_xts.h"
#include "crypto/bignum.h"
#include "crypto/cert.h"
#include "crypto/cmac.h"
#include "crypto/crc.h"
#include "crypto/dh.h"
#include "crypto/hmac.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"

namespace secddr::crypto {
namespace {

std::vector<std::uint8_t> unhex(const std::string& s) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < s.size(); i += 2)
    out.push_back(
        static_cast<std::uint8_t>(std::stoi(s.substr(i, 2), nullptr, 16)));
  return out;
}

template <std::size_t N>
std::array<std::uint8_t, N> arr(const std::string& hex) {
  const auto v = unhex(hex);
  std::array<std::uint8_t, N> a{};
  EXPECT_EQ(v.size(), N);
  std::memcpy(a.data(), v.data(), N);
  return a;
}

// ---------------------------------------------------------------- AES

TEST(Aes, Fips197Aes128Vector) {
  const Aes aes(arr<16>("000102030405060708090a0b0c0d0e0f"));
  Block b = arr<16>("00112233445566778899aabbccddeeff");
  aes.encrypt_block(b);
  EXPECT_EQ(to_hex(b), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.decrypt_block(b);
  EXPECT_EQ(to_hex(b), "00112233445566778899aabbccddeeff");
}

TEST(Aes, Fips197Aes256Vector) {
  const Aes aes(
      arr<32>("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  Block b = arr<16>("00112233445566778899aabbccddeeff");
  aes.encrypt_block(b);
  EXPECT_EQ(to_hex(b), "8ea2b7ca516745bfeafc49904b496089");
  aes.decrypt_block(b);
  EXPECT_EQ(to_hex(b), "00112233445566778899aabbccddeeff");
}

TEST(Aes, Sp80038aAes128EcbVectors) {
  // NIST SP 800-38A F.1.1 ECB-AES128.Encrypt.
  const Aes aes(arr<16>("2b7e151628aed2a6abf7158809cf4f3c"));
  struct {
    const char* pt;
    const char* ct;
  } cases[] = {
      {"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
      {"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
      {"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
  };
  for (const auto& c : cases) {
    Block b = arr<16>(c.pt);
    aes.encrypt_block(b);
    EXPECT_EQ(to_hex(b), c.ct);
  }
}

TEST(Aes, EncryptDecryptRoundTripRandom) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Key128 key;
    for (auto& k : key) k = static_cast<std::uint8_t>(rng.next());
    Block pt;
    for (auto& p : pt) p = static_cast<std::uint8_t>(rng.next());
    const Aes aes(key);
    Block ct = aes.encrypt(pt);
    EXPECT_NE(ct, pt);
    EXPECT_EQ(aes.decrypt(ct), pt);
  }
}

// ---------------------------------------------------------------- CTR

TEST(AesCtr, Sp80038aCtrVector) {
  // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt.
  const Aes aes(arr<16>("2b7e151628aed2a6abf7158809cf4f3c"));
  Block nonce = arr<16>("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  auto data = unhex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  ctr_xcrypt(aes, nonce, data.data(), data.size());
  EXPECT_EQ(to_hex(data.data(), data.size()),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
}

TEST(AesCtr, KeystreamMatchesXcrypt) {
  const Aes aes(Key128{1, 2, 3});
  const Block nonce = make_nonce(0x1234, 'R', 1);
  const auto ks = ctr_keystream(aes, nonce, 80);
  std::vector<std::uint8_t> zeros(80, 0);
  ctr_xcrypt(aes, nonce, zeros.data(), zeros.size());
  EXPECT_EQ(ks, zeros);
}

TEST(AesCtr, NonceDomainsAreDisjoint) {
  const Aes aes(Key128{9});
  const auto a = ctr_keystream(aes, make_nonce(5, 'R', 0), 16);
  const auto b = ctr_keystream(aes, make_nonce(5, 'W', 0), 16);
  const auto c = ctr_keystream(aes, make_nonce(5, 'R', 1), 16);
  const auto d = ctr_keystream(aes, make_nonce(6, 'R', 0), 16);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

// ---------------------------------------------------------------- XTS

TEST(AesXts, Ieee1619Vector1) {
  // IEEE 1619 XTS-AES-128 Vector 1: all-zero keys, sector 0, zero PT.
  const AesXts xts(Key128{}, Key128{});
  std::vector<std::uint8_t> data(32, 0);
  xts.encrypt(0, data.data(), data.size());
  EXPECT_EQ(to_hex(data.data(), data.size()),
            "917cf69ebd68b2ec9b9fe9a3eadda692"
            "cd43d2f59598ed858c02c2652fbf922e");
  xts.decrypt(0, data.data(), data.size());
  EXPECT_EQ(data, std::vector<std::uint8_t>(32, 0));
}

TEST(AesXts, Ieee1619Vector4) {
  // IEEE 1619 Vector 4: sequential plaintext, sector 0.
  const AesXts xts(arr<16>("27182818284590452353602874713526"),
                   arr<16>("31415926535897932384626433832795"));
  std::vector<std::uint8_t> data = unhex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  xts.encrypt(0, data.data(), data.size());
  EXPECT_EQ(to_hex(data.data(), data.size()),
            "27a7479befa1d476489f308cd4cfa6e2"
            "a96e4bbe3208ff25287dd3819616e89c");
}

TEST(AesXts, DifferentSectorsDifferentCiphertext) {
  const AesXts xts(Key128{1}, Key128{2});
  std::vector<std::uint8_t> a(64, 0xAA), b(64, 0xAA);
  xts.encrypt(100, a.data(), a.size());
  xts.encrypt(101, b.data(), b.size());
  EXPECT_NE(a, b);
  xts.decrypt(100, a.data(), a.size());
  EXPECT_EQ(a, std::vector<std::uint8_t>(64, 0xAA));
}

TEST(AesXts, SameInputSameSectorIsDeterministic) {
  // The XTS weakness the paper notes (§IV-B): no temporal variation.
  const AesXts xts(Key128{1}, Key128{2});
  std::vector<std::uint8_t> a(64, 0x5A), b(64, 0x5A);
  xts.encrypt(7, a.data(), a.size());
  xts.encrypt(7, b.data(), b.size());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------- SHA/HMAC

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Hmac, Rfc4231Case1) {
  const auto key = std::vector<std::uint8_t>(20, 0x0b);
  const std::string data = "Hi There";
  const auto d = hmac_sha256(key.data(), key.size(),
                             reinterpret_cast<const std::uint8_t*>(data.data()),
                             data.size());
  EXPECT_EQ(to_hex(d),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const auto d = hmac_sha256(reinterpret_cast<const std::uint8_t*>(key.data()),
                             key.size(),
                             reinterpret_cast<const std::uint8_t*>(data.data()),
                             data.size());
  EXPECT_EQ(to_hex(d),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hkdf, Rfc5869Case1) {
  const auto ikm = std::vector<std::uint8_t>(22, 0x0b);
  const auto salt = unhex("000102030405060708090a0b0c");
  const auto info = unhex("f0f1f2f3f4f5f6f7f8f9");
  const auto okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm.data(), okm.size()),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// ---------------------------------------------------------------- CMAC

TEST(Cmac, Rfc4493Vectors) {
  const Cmac cmac(arr<16>("2b7e151628aed2a6abf7158809cf4f3c"));
  // Empty message.
  EXPECT_EQ(to_hex(cmac.tag(nullptr, 0)),
            "bb1d6929e95937287fa37d129b756746");
  // 16-byte message.
  const auto m16 = unhex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(to_hex(cmac.tag(m16.data(), m16.size())),
            "070a16b46b4d4144f79bdd9dd04a287c");
  // 40-byte message.
  const auto m40 = unhex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411");
  EXPECT_EQ(to_hex(cmac.tag(m40.data(), m40.size())),
            "dfa66747de9ae63030ca32611497c827");
  // 64-byte message.
  const auto m64 = unhex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(to_hex(cmac.tag(m64.data(), m64.size())),
            "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(Cmac, Tag64IsTruncation) {
  const Cmac cmac(Key128{5});
  const std::uint8_t msg[] = {1, 2, 3, 4};
  const Block full = cmac.tag(msg, sizeof msg);
  EXPECT_EQ(cmac.tag64(msg, sizeof msg), load_le64(full.data()));
}

TEST(Cmac, SensitiveToEveryByte) {
  const Cmac cmac(Key128{9});
  std::array<std::uint8_t, 72> msg{};
  const std::uint64_t base = cmac.tag64(msg.data(), msg.size());
  for (std::size_t i = 0; i < msg.size(); ++i) {
    auto copy = msg;
    copy[i] ^= 0x01;
    EXPECT_NE(cmac.tag64(copy.data(), copy.size()), base) << "byte " << i;
  }
}

// ---------------------------------------------------------------- CRC

TEST(Crc, CheckWords) {
  const std::string check = "123456789";
  EXPECT_EQ(crc16(reinterpret_cast<const std::uint8_t*>(check.data()),
                  check.size()),
            0x29B1);  // CRC-16/CCITT-FALSE check value
  EXPECT_EQ(crc8(reinterpret_cast<const std::uint8_t*>(check.data()),
                 check.size()),
            0xF4);  // CRC-8 (poly 0x07) check value
}

TEST(Crc, IncrementalMatchesOneShot) {
  Xoshiro256 rng(3);
  std::vector<std::uint8_t> data(97);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const std::uint16_t whole = crc16(data.data(), data.size());
  std::uint16_t inc = 0xFFFF;
  inc = crc16_update(inc, data.data(), 10);
  inc = crc16_update(inc, data.data() + 10, 50);
  inc = crc16_update(inc, data.data() + 60, 37);
  EXPECT_EQ(whole, inc);
}

TEST(Crc, DetectsSingleBitFlips) {
  std::array<std::uint8_t, 64> data{};
  const std::uint16_t base = crc16(data.data(), data.size());
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto copy = data;
      copy[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc16(copy.data(), copy.size()), base);
    }
  }
}

// ---------------------------------------------------------------- BigUInt

TEST(BigUInt, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef";
  EXPECT_EQ(BigUInt::from_hex(hex).to_hex(), hex);
  EXPECT_EQ(BigUInt(0).to_hex(), "0");
  EXPECT_EQ(BigUInt(0x1234).to_hex(), "1234");
}

TEST(BigUInt, BytesRoundTrip) {
  const auto bytes = unhex("0102030405060708090a");
  const BigUInt v = BigUInt::from_bytes_be(bytes);
  EXPECT_EQ(v.to_bytes_be(), bytes);
  EXPECT_EQ(v.to_bytes_be(12).size(), 12u);
  EXPECT_EQ(v.to_bytes_be(12)[0], 0);
}

TEST(BigUInt, Arithmetic) {
  const BigUInt a = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  const BigUInt b(1);
  EXPECT_EQ((a + b).to_hex(), "100000000000000000000000000000000");
  EXPECT_EQ(((a + b) - b).to_hex(), a.to_hex());
  EXPECT_EQ((BigUInt(0xffffffff) * BigUInt(0xffffffff)).to_hex(),
            "fffffffe00000001");
}

TEST(BigUInt, DivMod) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    // Random sizes exercise both fast path and full Knuth D.
    const std::size_t abytes = 1 + rng.next_below(48);
    const std::size_t bbytes = 1 + rng.next_below(24);
    std::vector<std::uint8_t> av(abytes), bv(bbytes);
    for (auto& x : av) x = static_cast<std::uint8_t>(rng.next());
    for (auto& x : bv) x = static_cast<std::uint8_t>(rng.next());
    const BigUInt a = BigUInt::from_bytes_be(av);
    BigUInt b = BigUInt::from_bytes_be(bv);
    if (b.is_zero()) b = BigUInt(1);
    BigUInt q, r;
    BigUInt::divmod(a, b, q, r);
    EXPECT_TRUE(r < b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigUInt, ModExpKnownValues) {
  // 2^10 mod 1000 = 24; 3^200 mod 50 = 3^200 mod 50.
  EXPECT_EQ(BigUInt::mod_exp(BigUInt(2), BigUInt(10), BigUInt(1000)).low_u64(),
            24u);
  // Fermat: a^(p-1) mod p == 1 for prime p = 1000003.
  const BigUInt p(1000003);
  EXPECT_EQ(
      BigUInt::mod_exp(BigUInt(12345), p - BigUInt(1), p),
      BigUInt(1));
}

TEST(BigUInt, ShiftsAreConsistent) {
  const BigUInt v = BigUInt::from_hex("123456789abcdef0fedcba9876543210");
  EXPECT_EQ((v << 17) >> 17, v);
  EXPECT_EQ((v >> 9).to_hex(), ((v >> 8) >> 1).to_hex());
}

TEST(BigUInt, MillerRabin) {
  Xoshiro256 rng(13);
  EXPECT_TRUE(BigUInt::probable_prime(BigUInt(2), rng));
  EXPECT_TRUE(BigUInt::probable_prime(BigUInt(1000003), rng));
  EXPECT_FALSE(BigUInt::probable_prime(BigUInt(1000001), rng));  // 101*9901
  EXPECT_FALSE(BigUInt::probable_prime(BigUInt(561), rng));      // Carmichael
  EXPECT_TRUE(BigUInt::probable_prime(
      BigUInt::from_hex("ffffffffffffffc5"), rng));  // largest 64-bit prime
}

// ---------------------------------------------------------------- DH

TEST(Dh, GroupParametersAreSafePrimes) {
  // Verify p and q = (p-1)/2 of the 1536-bit group are probable primes.
  const DhGroup& g = DhGroup::modp1536();
  Xoshiro256 rng(17);
  EXPECT_TRUE(BigUInt::probable_prime(g.p, rng, 4));
  EXPECT_TRUE(BigUInt::probable_prime(g.q, rng, 4));
  EXPECT_EQ((g.q << 1) + BigUInt(1), g.p);
}

TEST(Dh, SharedSecretAgrees) {
  const DhGroup& g = DhGroup::modp1536();
  Xoshiro256 rng(19);
  const DhKeyPair alice = dh_generate(g, rng);
  const DhKeyPair bob = dh_generate(g, rng);
  EXPECT_TRUE(dh_check_public(g, alice.pub));
  EXPECT_TRUE(dh_check_public(g, bob.pub));
  const auto s1 = dh_shared_secret(g, alice.priv, bob.pub);
  const auto s2 = dh_shared_secret(g, bob.priv, alice.pub);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), g.byte_length);
}

TEST(Dh, RejectsDegeneratePublicKeys) {
  const DhGroup& g = DhGroup::modp1536();
  EXPECT_FALSE(dh_check_public(g, BigUInt(0)));
  EXPECT_FALSE(dh_check_public(g, BigUInt(1)));
  EXPECT_FALSE(dh_check_public(g, g.p - BigUInt(1)));
  EXPECT_FALSE(dh_check_public(g, g.p));
  EXPECT_TRUE(dh_check_public(g, BigUInt(2)));
}

// ---------------------------------------------------------------- Schnorr

TEST(Schnorr, SignVerifyRoundTrip) {
  const DhGroup& g = DhGroup::modp1536();
  Xoshiro256 rng(23);
  const SchnorrKeyPair kp = schnorr_generate(g, rng);
  const std::vector<std::uint8_t> msg = {'h', 'e', 'l', 'l', 'o'};
  const SchnorrSignature sig = schnorr_sign(g, kp.priv, msg, rng);
  EXPECT_TRUE(schnorr_verify(g, kp.pub, msg, sig));
}

TEST(Schnorr, RejectsTamperedMessage) {
  const DhGroup& g = DhGroup::modp1536();
  Xoshiro256 rng(29);
  const SchnorrKeyPair kp = schnorr_generate(g, rng);
  std::vector<std::uint8_t> msg = {1, 2, 3, 4};
  const SchnorrSignature sig = schnorr_sign(g, kp.priv, msg, rng);
  msg[2] ^= 0xFF;
  EXPECT_FALSE(schnorr_verify(g, kp.pub, msg, sig));
}

TEST(Schnorr, RejectsWrongKeyAndTamperedSig) {
  const DhGroup& g = DhGroup::modp1536();
  Xoshiro256 rng(31);
  const SchnorrKeyPair kp = schnorr_generate(g, rng);
  const SchnorrKeyPair other = schnorr_generate(g, rng);
  const std::vector<std::uint8_t> msg = {9, 9, 9};
  SchnorrSignature sig = schnorr_sign(g, kp.priv, msg, rng);
  EXPECT_FALSE(schnorr_verify(g, other.pub, msg, sig));
  sig.s = (sig.s + BigUInt(1)) % g.q;
  EXPECT_FALSE(schnorr_verify(g, kp.pub, msg, sig));
}

// ---------------------------------------------------------------- Certs

TEST(Certificate, IssueAndVerify) {
  const DhGroup& g = DhGroup::modp1536();
  CertificateAuthority ca(g, 1001);
  Xoshiro256 rng(37);
  const SchnorrKeyPair endorsement = schnorr_generate(g, rng);
  const Certificate cert = ca.issue("dimm:serial-42:rank0", endorsement.pub);
  EXPECT_TRUE(ca.verify(cert));
}

TEST(Certificate, RejectsForgedSubject) {
  const DhGroup& g = DhGroup::modp1536();
  CertificateAuthority ca(g, 1002);
  Xoshiro256 rng(41);
  const SchnorrKeyPair endorsement = schnorr_generate(g, rng);
  Certificate cert = ca.issue("dimm:serial-1:rank0", endorsement.pub);
  cert.subject = "dimm:serial-2:rank0";
  EXPECT_FALSE(ca.verify(cert));
}

TEST(Certificate, RevocationListHonored) {
  const DhGroup& g = DhGroup::modp1536();
  CertificateAuthority ca(g, 1003);
  Xoshiro256 rng(43);
  const SchnorrKeyPair endorsement = schnorr_generate(g, rng);
  const Certificate cert = ca.issue("dimm:evil", endorsement.pub);
  EXPECT_TRUE(ca.verify(cert));
  ca.revoke("dimm:evil");
  EXPECT_FALSE(ca.verify(cert));
}

TEST(Certificate, DifferentCaRejects) {
  const DhGroup& g = DhGroup::modp1536();
  CertificateAuthority ca1(g, 1004);
  CertificateAuthority ca2(g, 1005);
  Xoshiro256 rng(47);
  const SchnorrKeyPair endorsement = schnorr_generate(g, rng);
  const Certificate cert = ca1.issue("dimm:x", endorsement.pub);
  EXPECT_FALSE(ca2.verify(cert));
}

}  // namespace
}  // namespace secddr::crypto
