// Fleet service integration (`fleet` label): the sharded multi-process
// node farm must produce aggregates byte-identical to a single
// undisturbed worker at any worker count, including across a forced
// mid-run worker kill (respawn + resume from durable checkpoints), and
// the bench harness's SECDDR_WARM_CHECKPOINT warm-start must reproduce a
// cold run's measured statistics bit-for-bit.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "../bench/harness.h"
#include "fleet/checkpoint.h"
#include "fleet/coordinator.h"
#include "fleet/shard.h"
#include "secmem/params.h"
#include "workloads/workload.h"

namespace secddr::fleet {
namespace {

NodeConfig make_node(const char* workload, const secmem::SecurityParams& sec,
                     std::uint64_t instructions = 800,
                     std::uint64_t warmup = 200) {
  NodeConfig n;
  n.name = std::string(workload) + "+node";
  n.system.mem.cores = 2;
  n.system.security = sec;
  n.system.data_bytes = 4ull << 30;  // two cores at 2GB trace stride
  n.workload = workload;
  n.instructions = instructions;
  n.warmup = warmup;
  return n;
}

std::vector<NodeConfig> small_fleet() {
  return {
      make_node("mcf", secmem::SecurityParams::secddr_ctr()),
      make_node("lbm", secmem::SecurityParams::baseline_tree_ctr()),
      make_node("povray", secmem::SecurityParams::encrypt_only_xts()),
  };
}

std::string fresh_state_dir(const std::string& tag, std::size_t) {
  const std::string dir = testing::TempDir() + "fleet_" + tag;
  reset_state_dir(dir);  // drops every checkpoint generation + sentinel
  return dir;
}

TEST(FleetService, NodeCheckpointResumesBitIdentically) {
  const NodeConfig cfg = make_node("mcf", secmem::SecurityParams::secddr_ctr());
  const std::string path = testing::TempDir() + "fleet_node_smoke.ckpt";
  std::remove(path.c_str());

  // A missing checkpoint is a clean cold start, not an error.
  Node probe(cfg);
  EXPECT_FALSE(probe.restore_from_file(path));

  Node a(cfg);
  ASSERT_TRUE(a.step(1500)) << "budget larger than the whole run";
  a.checkpoint_to_file(path);

  Node b(cfg);
  ASSERT_TRUE(b.restore_from_file(path));
  while (!a.finished()) a.step(100000);
  while (!b.finished()) b.step(100000);
  EXPECT_EQ(checkpoint::encode_result(a.result()),
            checkpoint::encode_result(b.result()));
  std::remove(path.c_str());
}

TEST(FleetService, AggregatesBitIdenticalAcrossWorkerCounts) {
  const std::vector<NodeConfig> nodes = small_fleet();
  std::vector<std::uint8_t> reference;
  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    FleetOptions opt;
    opt.workers = workers;
    opt.checkpoint_every = 1000;
    std::string tag = "workers";
    tag += std::to_string(workers);
    opt.state_dir = fresh_state_dir(tag, nodes.size());
    const FleetResult r = run_fleet(nodes, opt);
    EXPECT_EQ(r.respawns, 0u);
    ASSERT_EQ(r.per_node.size(), nodes.size());
    // Every node ran its full measured budget on both cores.
    EXPECT_EQ(r.instructions, nodes.size() * 2 * 800);
    std::uint64_t hist_total = 0;
    for (const std::uint64_t v : r.ipc_hist) hist_total += v;
    EXPECT_EQ(hist_total, nodes.size());
    const std::vector<std::uint8_t> bytes = encode_fleet(r);
    if (reference.empty())
      reference = bytes;
    else
      EXPECT_EQ(bytes, reference);
  }
}

TEST(FleetService, RecoversBitIdenticallyFromWorkerKill) {
  const std::vector<NodeConfig> nodes = small_fleet();

  FleetOptions undisturbed;
  undisturbed.workers = 1;
  undisturbed.checkpoint_every = 400;
  undisturbed.state_dir = fresh_state_dir("kill_ref", nodes.size());
  const FleetResult ref = run_fleet(nodes, undisturbed);

  FleetOptions killed;
  killed.workers = 2;
  killed.checkpoint_every = 400;  // several checkpoints per node
  killed.state_dir = fresh_state_dir("kill_run", nodes.size());
  killed.kill_after_first_checkpoint = true;
  const FleetResult r = run_fleet(nodes, killed);

  EXPECT_GE(r.respawns, 1u) << "kill hook never fired: recovery untested";
  EXPECT_EQ(r.quarantined, 0u);
  ASSERT_EQ(r.failures.size(), r.respawns);
  for (const FailureEvent& ev : r.failures) EXPECT_FALSE(ev.hung);
  bool any_recovered = false;
  for (const NodeStatus s : r.status)
    any_recovered = any_recovered || s == NodeStatus::kRecovered;
  EXPECT_TRUE(any_recovered) << "no node reports a resume after the kill";
  EXPECT_EQ(encode_fleet(r), encode_fleet(ref));
}

TEST(FleetService, WarmStartCheckpointMatchesColdBitForBit) {
  // SECDDR_WARM_CHECKPOINT: the first run records the post-warmup state,
  // every later run of the same (workload, config) restores it — and the
  // measured statistics must be bit-identical to a cold run.
  const auto* desc = workloads::find("mcf");
  ASSERT_NE(desc, nullptr);
  bench::BenchOptions opt;
  opt.instructions = 800;
  opt.warmup = 300;
  opt.cores = 2;

  const auto sec = secmem::SecurityParams::secddr_ctr();
  ASSERT_EQ(std::getenv("SECDDR_WARM_CHECKPOINT"), nullptr);
  const std::vector<std::uint8_t> cold =
      checkpoint::encode_result(bench::run_workload(*desc, sec, opt));

  const std::string dir = testing::TempDir() + "fleet_warm";
  ::mkdir(dir.c_str(), 0777);
  ::setenv("SECDDR_WARM_CHECKPOINT", dir.c_str(), 1);
  // First warm-dir run records the checkpoint; the second restores it.
  const std::vector<std::uint8_t> recording =
      checkpoint::encode_result(bench::run_workload(*desc, sec, opt));
  const std::vector<std::uint8_t> warm =
      checkpoint::encode_result(bench::run_workload(*desc, sec, opt));
  ::unsetenv("SECDDR_WARM_CHECKPOINT");

  EXPECT_EQ(recording, cold);
  EXPECT_EQ(warm, cold);

  // The warm image landed under the knob's directory, keyed by workload
  // name + config hash.
  workloads::SyntheticTrace t0(*desc, 0, bench::kCoreStrideBytes);
  workloads::SyntheticTrace t1(*desc, 1, bench::kCoreStrideBytes);
  sim::System probe(
      bench::make_system_config(opt, sec, dram::Timings::ddr4_3200()),
      {&t0, &t1});
  char hash[17];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(probe.config_hash()));
  const std::string warm_path =
      dir + "/" + desc->name + "_" + hash + ".warm";
  std::FILE* f = std::fopen(warm_path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << warm_path << " was not recorded";
  if (f) std::fclose(f);
  std::remove(warm_path.c_str());
}

}  // namespace
}  // namespace secddr::fleet
