// Attestation protocol (§III-F): certificate validation, signed key
// exchange, counter initialization, and rejection of forged modules.
#include <gtest/gtest.h>

#include "core/attestation.h"
#include "core/dimm.h"
#include "core/session.h"
#include "crypto/cert.h"
#include "crypto/dh.h"

namespace secddr::core {
namespace {

DimmConfig tiny_dimm() {
  DimmConfig cfg;
  cfg.geometry.ranks = 2;
  cfg.geometry.bank_groups = 2;
  cfg.geometry.banks_per_group = 2;
  cfg.geometry.rows_per_bank = 16;
  cfg.geometry.columns_per_row = 8;
  return cfg;
}

TEST(Attestation, HappyPathEstablishesSharedKey) {
  const auto& g = crypto::DhGroup::modp1536();
  crypto::CertificateAuthority ca(g, 1);
  Dimm dimm(tiny_dimm(), "dimm:serial-7", g, 2);
  dimm.provision(ca);
  AttestationDriver driver(g, ca, 3);

  const AttestationResult r = driver.attest_rank(dimm, 0);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(dimm.keys_established(0));
  // The device installed the same counter the driver chose (even).
  EXPECT_EQ(r.c0 & 1, 0u);
  EXPECT_EQ(dimm.transaction_counter(0), r.c0);
}

TEST(Attestation, RanksGetIndependentKeysAndCounters) {
  const auto& g = crypto::DhGroup::modp1536();
  crypto::CertificateAuthority ca(g, 4);
  Dimm dimm(tiny_dimm(), "dimm:serial-8", g, 5);
  dimm.provision(ca);
  AttestationDriver driver(g, ca, 6);

  const AttestationResult r0 = driver.attest_rank(dimm, 0);
  const AttestationResult r1 = driver.attest_rank(dimm, 1);
  ASSERT_TRUE(r0.ok && r1.ok);
  EXPECT_NE(r0.kt, r1.kt) << "each rank needs its own channel key";
  EXPECT_NE(r0.c0, r1.c0);
}

TEST(Attestation, RevokedModuleRejected) {
  const auto& g = crypto::DhGroup::modp1536();
  crypto::CertificateAuthority ca(g, 7);
  Dimm dimm(tiny_dimm(), "dimm:stolen", g, 8);
  dimm.provision(ca);
  ca.revoke("dimm:stolen:rank0");
  AttestationDriver driver(g, ca, 9);
  const AttestationResult r = driver.attest_rank(dimm, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("certificate"), std::string::npos);
}

TEST(Attestation, ModuleFromDifferentCaRejected) {
  // A counterfeit module provisioned by an attacker-controlled CA.
  const auto& g = crypto::DhGroup::modp1536();
  crypto::CertificateAuthority real_ca(g, 10);
  crypto::CertificateAuthority evil_ca(g, 11);
  Dimm fake(tiny_dimm(), "dimm:counterfeit", g, 12);
  fake.provision(evil_ca);
  AttestationDriver driver(g, real_ca, 13);
  const AttestationResult r = driver.attest_rank(fake, 0);
  EXPECT_FALSE(r.ok);
}

TEST(Attestation, MonotonicCountersIncreaseAcrossBoots) {
  const auto& g = crypto::DhGroup::modp1536();
  crypto::CertificateAuthority ca(g, 14);
  Dimm dimm(tiny_dimm(), "dimm:mono", g, 15);
  dimm.provision(ca);
  AttestationDriver driver(g, ca, 16, /*monotonic=*/true);
  const AttestationResult boot1 = driver.attest_rank(dimm, 0);
  const AttestationResult boot2 = driver.attest_rank(dimm, 0);
  ASSERT_TRUE(boot1.ok && boot2.ok);
  EXPECT_GT(boot2.c0, boot1.c0);
}

TEST(Attestation, SessionCreateFailsClosedOnBadModule) {
  // The session constructor must refuse to come up when attestation
  // fails (fail-closed), e.g. after the CA revokes the module.
  SessionConfig cfg;
  cfg.dimm = tiny_dimm();
  cfg.seed = 17;
  auto good = SecureMemorySession::create(cfg);
  ASSERT_NE(good, nullptr);
  good->ca().revoke(cfg.module_id + ":rank0");
  std::string failure;
  // A fresh attestation round against the same (now revoked) module.
  EXPECT_FALSE(good->reattest(false));
}

TEST(Attestation, TamperedCounterInitIsDetectedNotExploitable) {
  // §III-F: C0 travels in plaintext; tampering desynchronizes and every
  // access fails MAC verification — no integrity loss.
  SessionConfig cfg;
  cfg.dimm = tiny_dimm();
  cfg.seed = 18;
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  s->write(0x40, CacheLine::filled(0x5C));
  ASSERT_TRUE(s->read(0x40).ok());
  // Attacker nudges the device counter (as if C0 was altered in flight).
  s->dimm().set_transaction_counter(0, s->dimm().transaction_counter(0) + 2);
  EXPECT_FALSE(s->read(0x40).ok());
}

}  // namespace
}  // namespace secddr::core
