// CPU simulator: trace-driven core, prefetcher, memory system plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "dram/system.h"
#include "secmem/model.h"
#include "sim/core.h"
#include "sim/memory_system.h"
#include "sim/prefetcher.h"
#include "sim/system.h"
#include "sim/trace.h"
#include "workloads/generator.h"

namespace secddr::sim {
namespace {

// A MemoryPort with programmable latency, for isolating the core model.
class FakeMemory final : public MemoryPort {
 public:
  explicit FakeMemory(Cycle latency) : latency_(latency) {}

  bool issue_load(unsigned, Addr, bool* done) override {
    ++loads;
    pending_.push_back({now_ + latency_, done});
    return true;
  }
  bool issue_store(unsigned, Addr) override {
    ++stores;
    return true;
  }
  void tick() {
    ++now_;
    for (std::size_t i = 0; i < pending_.size();) {
      if (pending_[i].first <= now_) {
        *pending_[i].second = true;
        pending_[i] = pending_.back();
        pending_.pop_back();
      } else {
        ++i;
      }
    }
  }

  std::uint64_t loads = 0;
  std::uint64_t stores = 0;

 private:
  Cycle latency_;
  Cycle now_ = 0;
  std::vector<std::pair<Cycle, bool*>> pending_;
};

std::vector<TraceRecord> make_trace(unsigned n, std::uint32_t gap,
                                    bool writes = false) {
  std::vector<TraceRecord> v;
  for (unsigned i = 0; i < n; ++i)
    v.push_back({gap, writes, static_cast<Addr>(i) * kLineSize});
  return v;
}

// ---------------------------------------------------------------- core

TEST(Core, PureComputeRetiresAtWidth) {
  // 6000 non-memory instructions at width 6 => ~1000 cycles.
  VectorTrace trace({{6000, false, 0}});
  FakeMemory mem(10);
  Core core(0, {224, 6}, trace, mem);
  // The trailing memory op of the record is also fetched and must drain.
  while (!core.finished()) {
    core.tick();
    mem.tick();
  }
  EXPECT_GE(core.stats().instructions, 6000u);
  EXPECT_NEAR(static_cast<double>(core.stats().cycles), 6001.0 / 6.0, 25.0);
}

TEST(Core, MemoryLatencyBoundsIpcWithoutMlp) {
  // Dependent loads (one at a time in a tiny ROB) pay the full latency.
  VectorTrace trace(make_trace(100, 0));
  FakeMemory mem(100);
  Core core(0, {/*rob=*/1, /*width=*/1}, trace, mem);
  while (!core.finished()) {
    core.tick();
    mem.tick();
  }
  // 100 loads x ~100 cycles each.
  EXPECT_GT(core.stats().cycles, 100u * 100u);
}

TEST(Core, LargeRobExposesMemoryLevelParallelism) {
  // Same trace, 224-entry ROB: loads overlap, cycles collapse.
  VectorTrace t1(make_trace(200, 0));
  VectorTrace t2(make_trace(200, 0));
  FakeMemory m1(100), m2(100);
  Core small(0, {1, 1}, t1, m1);
  Core big(0, {224, 6}, t2, m2);
  while (!small.finished()) {
    small.tick();
    m1.tick();
  }
  while (!big.finished()) {
    big.tick();
    m2.tick();
  }
  EXPECT_LT(big.stats().cycles * 10, small.stats().cycles)
      << "ROB must expose MLP";
}

TEST(Core, InstructionBudgetHonored) {
  VectorTrace trace(make_trace(100000, 9));
  FakeMemory mem(5);
  Core core(0, {224, 6}, trace, mem);
  core.set_instruction_budget(5000);
  while (!core.finished()) {
    core.tick();
    mem.tick();
  }
  EXPECT_GE(core.stats().instructions, 5000u);
  EXPECT_LE(core.stats().instructions, 5100u);
}

TEST(Core, BudgetBoundaryKeepsPendingTraceRecord) {
  // One record: 5 gap instructions then a load. A budget of exactly 5
  // ends the phase on the batch boundary; the memory op must survive
  // into the next phase instead of being silently dropped.
  VectorTrace trace({{5, false, 0x1000}});
  FakeMemory mem(3);
  Core core(0, {224, 6}, trace, mem);
  core.set_instruction_budget(5);
  for (int i = 0; i < 100 && !core.finished(); ++i) {
    core.tick();
    mem.tick();
  }
  ASSERT_TRUE(core.finished());
  EXPECT_EQ(core.stats().instructions, 5u);
  EXPECT_EQ(mem.loads, 0u) << "the load is beyond this phase's budget";
  core.set_instruction_budget(0);  // next phase: unlimited
  for (int i = 0; i < 100 && !core.finished(); ++i) {
    core.tick();
    mem.tick();
  }
  ASSERT_TRUE(core.finished());
  EXPECT_EQ(mem.loads, 1u) << "memory op lost at the budget boundary";
  EXPECT_EQ(core.stats().instructions, 6u);
}

TEST(Core, BudgetBoundaryMidGapResumesRemainder) {
  // Budget lands inside the gap batch: the remaining gap and the memory
  // op both carry over to the next phase.
  VectorTrace trace({{10, true, 0x2000}});
  FakeMemory mem(3);
  Core core(0, {224, 6}, trace, mem);
  core.set_instruction_budget(6);
  for (int i = 0; i < 100 && !core.finished(); ++i) {
    core.tick();
    mem.tick();
  }
  ASSERT_TRUE(core.finished());
  EXPECT_EQ(core.stats().instructions, 6u);
  core.set_instruction_budget(11);  // 4 remaining gap + the store
  for (int i = 0; i < 100 && !core.finished(); ++i) {
    core.tick();
    mem.tick();
  }
  ASSERT_TRUE(core.finished());
  EXPECT_EQ(mem.stores, 1u);
  EXPECT_EQ(core.stats().instructions, 11u);
}

TEST(Core, StoresDoNotBlockRetirement) {
  VectorTrace trace(make_trace(500, 0, /*writes=*/true));
  FakeMemory mem(1000);  // huge latency, but stores are posted
  Core core(0, {224, 6}, trace, mem);
  while (!core.finished()) {
    core.tick();
    mem.tick();
  }
  EXPECT_EQ(mem.stores, 500u);
  EXPECT_LT(core.stats().cycles, 2000u);
}

TEST(Core, CountsLoadsAndStores) {
  std::vector<TraceRecord> recs;
  for (int i = 0; i < 10; ++i) recs.push_back({0, i % 2 == 0, Addr(i) * 64});
  VectorTrace trace(recs);
  FakeMemory mem(2);
  Core core(0, {224, 6}, trace, mem);
  while (!core.finished()) {
    core.tick();
    mem.tick();
  }
  EXPECT_EQ(core.stats().loads, 5u);
  EXPECT_EQ(core.stats().stores, 5u);
}

// ---------------------------------------------------------------- prefetcher

TEST(Prefetcher, DetectsAscendingStream) {
  StreamPrefetcher pf;
  std::vector<Addr> out;
  for (int i = 0; i < 7; ++i) pf.train(static_cast<Addr>(i) * 64, out);
  out.clear();
  pf.train(7 * 64, out);  // inspect only the final trigger
  EXPECT_FALSE(out.empty());
  // Prefetches are ahead of the triggering access.
  for (Addr p : out) EXPECT_GT(p, 7u * 64);
}

TEST(Prefetcher, DetectsDescendingStream) {
  StreamPrefetcher pf;
  std::vector<Addr> out;
  for (int i = 32; i > 25; --i) pf.train(static_cast<Addr>(i) * 64, out);
  out.clear();
  pf.train(25 * 64, out);
  EXPECT_FALSE(out.empty());
  for (Addr p : out) EXPECT_LT(p, 25u * 64);
}

TEST(Prefetcher, IgnoresRandomAccesses) {
  StreamPrefetcher pf;
  Xoshiro256 rng(3);
  std::vector<Addr> out;
  for (int i = 0; i < 200; ++i)
    pf.train(line_base(rng.next() % (1 << 30)), out);
  EXPECT_LT(out.size(), 10u);
}

TEST(Prefetcher, StopsAtPageBoundary) {
  StreamPrefetcher pf({16, 8, 8, 2});
  std::vector<Addr> out;
  // Train at the end of a 4KB page.
  for (Addr line = 4096 - 5 * 64; line < 4096; line += 64) pf.train(line, out);
  for (Addr p : out) EXPECT_LT(p, 4096u) << "prefetch crossed the page";
}

// ---------------------------------------------------------------- system

sim::SystemConfig small_system(secmem::SecurityParams sec) {
  sim::SystemConfig cfg;
  cfg.mem.cores = 2;
  cfg.security = std::move(sec);
  // Must cover both cores' address spaces: SyntheticTrace places core c at
  // c * 2GB, so 2 cores need a 4GB data region.
  cfg.data_bytes = 4ull << 30;
  return cfg;
}

TEST(System, RunsToCompletionAndReportsStats) {
  auto desc = *workloads::find("gcc");
  workloads::SyntheticTrace t0(desc, 0), t1(desc, 1);
  System sys(small_system(secmem::SecurityParams::encrypt_only_xts()),
             {&t0, &t1});
  const RunResult r = sys.run(20000);
  EXPECT_FALSE(r.hit_cycle_limit);
  EXPECT_EQ(r.cores.size(), 2u);
  for (const auto& c : r.cores) EXPECT_GE(c.instructions, 20000u);
  EXPECT_GT(r.total_ipc, 0.0);
  EXPECT_GT(r.mem.llc_demand_accesses, 0u);
}

TEST(System, MemoryIntensiveWorkloadHasLowerIpc) {
  auto light = *workloads::find("povray");
  auto heavy = *workloads::find("mcf");
  workloads::SyntheticTrace l0(light, 0), l1(light, 1);
  workloads::SyntheticTrace h0(heavy, 0), h1(heavy, 1);
  System sys_l(small_system(secmem::SecurityParams::encrypt_only_xts()),
               {&l0, &l1});
  System sys_h(small_system(secmem::SecurityParams::encrypt_only_xts()),
               {&h0, &h1});
  // Warmup long enough for povray's warm working set to become resident
  // (one full sweep of the 256KB region at ~30% warm accesses).
  const RunResult rl = sys_l.run(50000, 2'000'000'000, /*warmup=*/120000);
  const RunResult rh = sys_h.run(50000, 2'000'000'000, /*warmup=*/120000);
  EXPECT_GT(rl.total_ipc, rh.total_ipc * 1.5);
  EXPECT_GT(rh.llc_mpki, rl.llc_mpki * 10);
}

TEST(System, EveryLoadEventuallyCompletes) {
  // No deadlocks under the full stack with the tree config (the most
  // complex metadata path).
  auto desc = *workloads::find("omnetpp");
  workloads::SyntheticTrace t0(desc, 0), t1(desc, 1);
  System sys(small_system(secmem::SecurityParams::baseline_tree_ctr()),
             {&t0, &t1});
  const RunResult r = sys.run(15000, /*max_cycles=*/50'000'000);
  EXPECT_FALSE(r.hit_cycle_limit) << "simulation wedged";
}

TEST(System, MultiChannelSpreadsTrafficAndAggregates) {
  auto desc = *workloads::find("mcf");
  workloads::SyntheticTrace t0(desc, 0), t1(desc, 1);
  auto cfg = small_system(secmem::SecurityParams::secddr_ctr());
  cfg.geometry.channels = 2;
  System sys(cfg, {&t0, &t1});
  const RunResult r = sys.run(15000, 2'000'000'000, /*warmup=*/5000);
  EXPECT_FALSE(r.hit_cycle_limit);
  ASSERT_EQ(r.dram_per_channel.size(), 2u);
  ASSERT_EQ(r.engine_per_channel.size(), 2u);
  // Line interleave spreads a memory-bound workload across both channels.
  std::uint64_t reads = 0, engine_reads = 0;
  for (const auto& d : r.dram_per_channel) {
    EXPECT_GT(d.reads_completed, 0u);
    reads += d.reads_completed;
  }
  for (const auto& e : r.engine_per_channel) {
    EXPECT_GT(e.data_reads, 0u);
    engine_reads += e.data_reads;
  }
  // Aggregates are exactly the per-channel sums.
  EXPECT_EQ(reads, r.dram.reads_completed);
  EXPECT_EQ(engine_reads, r.engine.data_reads);
}

TEST(System, DramSeesTraffic) {
  auto desc = *workloads::find("lbm");
  workloads::SyntheticTrace t0(desc, 0), t1(desc, 1);
  auto cfg = small_system(secmem::SecurityParams::encrypt_only_xts());
  cfg.mem.llc_bytes = 256 * 1024;  // small LLC: dirty evictions flow out
  System sys(cfg, {&t0, &t1});
  const RunResult r = sys.run(30000, 2'000'000'000, /*warmup=*/30000);
  EXPECT_GT(r.dram.reads_completed, 0u);
  EXPECT_GT(r.dram.writes_completed, 0u);  // lbm is write-heavy
  EXPECT_GT(r.dram.row_hits, 0u);
}

}  // namespace
}  // namespace secddr::sim
