// Attack validation: every adversary the paper analyzes, asserted to be
// detected exactly where the paper says SecDDR detects it — and asserted
// to SUCCEED against the weakened designs the paper argues against
// (no eWCRC; trusted-DIMM logic placement under an on-DIMM adversary).
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/attack.h"
#include "core/session.h"
#include "dram/controller.h"
#include "dram/timings.h"

namespace secddr::core {
namespace {

SessionConfig tiny_config(std::uint64_t seed) {
  SessionConfig cfg;
  cfg.dimm.geometry.ranks = 2;
  cfg.dimm.geometry.bank_groups = 2;
  cfg.dimm.geometry.banks_per_group = 2;
  cfg.dimm.geometry.rows_per_bank = 16;
  cfg.dimm.geometry.columns_per_row = 8;
  cfg.seed = seed;
  return cfg;
}

// Decodes where a given line address lands (mirrors the controller).
struct Loc {
  unsigned rank, bg, bank, col;
  std::uint64_t row;
};
Loc locate(const SecureMemorySession& s, Addr a) {
  const auto d = const_cast<SecureMemorySession&>(s).controller().mapping()
                     .decode(a);
  return {d.rank, d.bank_group, d.bank, d.column, d.row};
}

// ------------------------------------------------------- bus replay

TEST(Attack, BusReplayOfStaleDataIsDetected) {
  // §II-C: replay (c, m) captured at t0 into a read at t2. The E-MAC is
  // bound to the transaction counter, so the stale pair fails to verify.
  auto s = SecureMemorySession::create(tiny_config(100));
  ASSERT_NE(s, nullptr);
  BusReplayInterposer attacker;
  s->set_bus_interposer(&attacker);

  const Addr target = 0x40;
  const Loc loc = locate(*s, target);
  const CacheLine v1 = CacheLine::filled(0x01);
  const CacheLine v2 = CacheLine::filled(0x02);

  s->write(target, v1);
  ASSERT_TRUE(s->read(target).ok());  // attacker records (data, E-MAC)
  s->write(target, v2);               // processor updates the value

  attacker.arm(loc.rank, loc.bg, loc.bank, static_cast<unsigned>(loc.row),
               loc.col, /*index=*/0);
  const auto r = s->read(target);  // attacker splices in the stale pair
  EXPECT_EQ(attacker.replays_performed(), 1u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violation, Violation::kMacMismatch);
}

TEST(Attack, ReplayOfCapturedWriteBurstIsDetected) {
  // Replaying the (data, E-MAC) captured from an earlier WRITE into a
  // later read also fails: write pads use odd counters, read pads even.
  auto s = SecureMemorySession::create(tiny_config(101));
  ASSERT_NE(s, nullptr);
  BusReplayInterposer attacker;
  s->set_bus_interposer(&attacker);

  const Addr target = 0x80;
  const Loc loc = locate(*s, target);
  s->write(target, CacheLine::filled(0x11));  // captured by the snoop
  s->write(target, CacheLine::filled(0x22));

  attacker.arm(loc.rank, loc.bg, loc.bank, static_cast<unsigned>(loc.row),
               loc.col, 0);
  const auto r = s->read(target);
  EXPECT_FALSE(r.ok());
}

TEST(Attack, ReplayDetectionIsRobustOverManyAttempts) {
  // Property sweep: replays of every recorded epoch all fail.
  auto s = SecureMemorySession::create(tiny_config(102));
  ASSERT_NE(s, nullptr);
  BusReplayInterposer attacker;
  s->set_bus_interposer(&attacker);
  const Addr target = 0xC0;
  const Loc loc = locate(*s, target);

  for (int epoch = 0; epoch < 8; ++epoch) {
    s->write(target, CacheLine::filled(static_cast<std::uint8_t>(epoch)));
    ASSERT_TRUE(s->read(target).ok());
  }
  for (std::size_t idx = 0; idx < 14; ++idx) {
    attacker.arm(loc.rank, loc.bg, loc.bank, static_cast<unsigned>(loc.row),
                 loc.col, idx);
    EXPECT_FALSE(s->read(target).ok()) << "replay of epoch " << idx;
  }
}

// ------------------------------------------------------- address redirect

TEST(Attack, RowRedirectOnWriteIsCaughtByEwcrcAtTheDevice) {
  // The Fig. 3 attack. With encrypted eWCRC the device's address check
  // fails before the stale pair can be planted: ALERT at write time.
  auto s = SecureMemorySession::create(tiny_config(103));
  ASSERT_NE(s, nullptr);
  RowRedirectInterposer attacker;
  s->set_bus_interposer(&attacker);

  const Addr target = 0x40;
  const Loc loc = locate(*s, target);
  s->write(target, CacheLine::filled(0xAA));

  // Force a different bank's row open so the next access re-activates...
  // simpler: arm the redirect for the row the controller will open on its
  // next write to this bank after a conflicting activate.
  const Addr conflicting =
      target + static_cast<Addr>(s->controller().mapping().geometry()
                                     .columns_per_row) *
                   kLineSize *
                   (s->controller().mapping().geometry().bank_groups *
                    s->controller().mapping().geometry().banks_per_group *
                    s->controller().mapping().geometry().ranks);
  ASSERT_EQ(locate(*s, conflicting).bank, loc.bank);
  ASSERT_NE(locate(*s, conflicting).row, loc.row);
  s->write(conflicting, CacheLine::filled(0x55));  // closes target's row

  attacker.arm(loc.rank, loc.bg, loc.bank, loc.row, loc.row + 1);
  const Violation v = s->write(target, CacheLine::filled(0xBB));
  EXPECT_EQ(attacker.redirects_performed(), 1u);
  EXPECT_EQ(v, Violation::kWriteAlert);
}

TEST(Attack, RowRedirectSucceedsWithoutEwcrc) {
  // The same attack against SecDDR-without-eWCRC completes the replay
  // cycle silently — demonstrating why §III-B needs the encrypted eWCRC.
  auto cfg = tiny_config(104);
  cfg.dimm.ewcrc_enabled = false;
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  RowRedirectInterposer attacker;
  s->set_bus_interposer(&attacker);

  const Addr target = 0x40;
  const Loc loc = locate(*s, target);
  const CacheLine stale = CacheLine::filled(0xAA);
  s->write(target, stale);

  const Addr row_stride = static_cast<Addr>(8) * kLineSize * (2 * 2 * 2);
  const Addr conflicting = target + row_stride;
  ASSERT_EQ(locate(*s, conflicting).bank, loc.bank);
  s->write(conflicting, CacheLine::filled(0x55));  // closes target's row

  attacker.arm(loc.rank, loc.bg, loc.bank, loc.row, loc.row + 1);
  const Violation v = s->write(target, CacheLine::filled(0xBB));
  EXPECT_EQ(v, Violation::kNone);  // device noticed nothing
  EXPECT_EQ(attacker.redirects_performed(), 1u);

  // Victim touches a third row in the bank, so the later read of the
  // target re-opens row X legitimately (the paper's t2 step).
  s->write(target + 2 * row_stride, CacheLine::filled(0x66));

  // The read returns the STALE value and verifies fine: replay succeeded.
  const auto r = s->read(target);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, stale);
}

TEST(Attack, ColumnRedirectOnWriteIsCaughtByEwcrc) {
  auto s = SecureMemorySession::create(tiny_config(105));
  ASSERT_NE(s, nullptr);
  ColumnRedirectInterposer attacker;
  s->set_bus_interposer(&attacker);

  const Addr target = 0x40;  // column 1 of row 0
  const Loc loc = locate(*s, target);
  s->write(target, CacheLine::filled(0x10));

  attacker.arm(loc.rank, loc.bg, loc.bank, loc.col, loc.col + 1);
  const Violation v = s->write(target, CacheLine::filled(0x20));
  EXPECT_EQ(v, Violation::kWriteAlert);
}

TEST(Attack, ColumnRedirectSucceedsWithoutEwcrc) {
  auto cfg = tiny_config(106);
  cfg.dimm.ewcrc_enabled = false;
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  ColumnRedirectInterposer attacker;
  s->set_bus_interposer(&attacker);

  const Addr target = 0x40;
  const Loc loc = locate(*s, target);
  const CacheLine stale = CacheLine::filled(0x10);
  s->write(target, stale);
  attacker.arm(loc.rank, loc.bg, loc.bank, loc.col, loc.col + 1);
  s->write(target, CacheLine::filled(0x20));
  const auto r = s->read(target);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, stale);  // silent stale-data replay
}

// ------------------------------------------------------- drop / convert

TEST(Attack, DroppedWriteDesynchronizesAndIsDetectedOnNextRead) {
  // §III-B: dropping a write leaves the device counter behind; every
  // subsequent read decrypts with the wrong pad and fails.
  auto s = SecureMemorySession::create(tiny_config(107));
  ASSERT_NE(s, nullptr);
  DropWriteInterposer attacker;
  s->set_bus_interposer(&attacker);

  const Addr target = 0x40;
  const Loc loc = locate(*s, target);
  s->write(target, CacheLine::filled(0x01));

  attacker.arm(loc.rank, loc.bg, loc.bank, loc.col);
  EXPECT_EQ(s->write(target, CacheLine::filled(0x02)), Violation::kNone);
  EXPECT_EQ(attacker.drops_performed(), 1u);

  // The stale data is still there, but the channel is desynchronized.
  EXPECT_FALSE(s->read(target).ok());
  // And it stays broken: the attack cannot be hidden.
  EXPECT_FALSE(s->read(target).ok());
  EXPECT_FALSE(s->read(0x80).ok());  // other lines in the rank too
}

TEST(Attack, WriteToReadConversionIsDetectedByCounterParity) {
  // §III-B: converting WR->RD would keep counters *numerically* in sync
  // (one transaction each side) — only the even/odd discipline breaks it.
  auto s = SecureMemorySession::create(tiny_config(108));
  ASSERT_NE(s, nullptr);
  WriteToReadInterposer attacker;
  s->set_bus_interposer(&attacker);

  const Addr target = 0x40;
  const Loc loc = locate(*s, target);
  s->write(target, CacheLine::filled(0x01));

  attacker.arm(loc.rank, loc.bg, loc.bank, loc.col);
  EXPECT_EQ(s->write(target, CacheLine::filled(0x02)), Violation::kNone);

  // Device consumed an even (read) counter for the converted command while
  // the processor consumed an odd (write) one: next read fails.
  const auto r = s->read(target);
  EXPECT_FALSE(r.ok());
}

// ------------------------------------------------------- bit flips

TEST(Attack, ReadDataBitFlipDetected) {
  auto s = SecureMemorySession::create(tiny_config(109));
  ASSERT_NE(s, nullptr);
  BitFlipInterposer attacker;
  s->set_bus_interposer(&attacker);
  s->write(0x40, CacheLine::filled(0x3C));
  attacker.arm(BitFlipInterposer::Field::kReadData, 137);
  EXPECT_FALSE(s->read(0x40).ok());
  // Channel stays healthy afterwards (flip was transient).
  EXPECT_TRUE(s->read(0x40).ok());
}

TEST(Attack, ReadEmacBitFlipDetected) {
  auto s = SecureMemorySession::create(tiny_config(110));
  ASSERT_NE(s, nullptr);
  BitFlipInterposer attacker;
  s->set_bus_interposer(&attacker);
  s->write(0x40, CacheLine::filled(0x3C));
  attacker.arm(BitFlipInterposer::Field::kReadEmac, 5);
  EXPECT_FALSE(s->read(0x40).ok());
}

TEST(Attack, WriteDataBitFlipCaughtAtDeviceByWcrc) {
  // Data-chip WCRC catches in-flight write corruption before storing.
  auto s = SecureMemorySession::create(tiny_config(111));
  ASSERT_NE(s, nullptr);
  BitFlipInterposer attacker;
  s->set_bus_interposer(&attacker);
  attacker.arm(BitFlipInterposer::Field::kWriteData, 300);
  EXPECT_EQ(s->write(0x40, CacheLine::filled(0x3C)), Violation::kWriteAlert);
}

TEST(Attack, WriteEmacBitFlipCaughtAtDevice) {
  auto s = SecureMemorySession::create(tiny_config(112));
  ASSERT_NE(s, nullptr);
  BitFlipInterposer attacker;
  s->set_bus_interposer(&attacker);
  attacker.arm(BitFlipInterposer::Field::kWriteEmac, 9);
  EXPECT_EQ(s->write(0x40, CacheLine::filled(0x3C)), Violation::kWriteAlert);
}

TEST(Attack, WriteEmacFlipWithoutEwcrcDefersDetectionToRead) {
  // Without the device-side CRC the corrupted MAC is stored and the
  // failure surfaces at the next read — the deferred-detection semantics
  // of §III-A.
  auto cfg = tiny_config(113);
  cfg.dimm.ewcrc_enabled = false;
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  BitFlipInterposer attacker;
  s->set_bus_interposer(&attacker);
  attacker.arm(BitFlipInterposer::Field::kWriteEmac, 9);
  EXPECT_EQ(s->write(0x40, CacheLine::filled(0x3C)), Violation::kNone);
  EXPECT_FALSE(s->read(0x40).ok());
}

// ------------------------------------------------------- DIMM substitution

TEST(Attack, DimmSubstitutionDetectedByCounterMismatch) {
  // §III-C cold-boot replay: freeze the DIMM (snapshot), let the victim
  // progress, then substitute the frozen module. The device counter in
  // the snapshot no longer matches the processor's: all reads fail.
  auto s = SecureMemorySession::create(tiny_config(114));
  ASSERT_NE(s, nullptr);
  const Addr a = 0x40;
  s->write(a, CacheLine::filled(0x01));
  const auto frozen = s->snapshot_dimm();  // attacker preserves old state

  s->write(a, CacheLine::filled(0x02));  // victim makes progress
  ASSERT_TRUE(s->read(a).ok());

  s->sleep();
  s->substitute_dimm(frozen);  // attacker swaps the module
  s->wake();

  const auto r = s->read(a);
  EXPECT_FALSE(r.ok()) << "stale pre-substitution state must not verify";
}

TEST(Attack, LegitimateDimmReplacementWorksAfterReattestation) {
  // Non-adversarial replacement (§III-C): the processor is notified,
  // re-attests, clears memory, and continues from a clean state.
  auto s = SecureMemorySession::create(tiny_config(115));
  ASSERT_NE(s, nullptr);
  s->write(0x40, CacheLine::filled(0x77));
  const auto other_module = s->snapshot_dimm();
  s->substitute_dimm(other_module);
  ASSERT_TRUE(s->reattest(/*clear_memory=*/true));
  const auto r = s->read(0x40);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, CacheLine{}) << "memory must be cleared at replacement";
}

// ------------------------------------------------------- on-DIMM attacks

TEST(Attack, OnDimmReplayFailsAgainstEccChipPlacement) {
  // Untrusted-DIMM design (§III-E): the on-DIMM interconnect carries
  // E-MACs; an on-DIMM replay splices a pad-stale pair and is detected.
  auto s = SecureMemorySession::create(tiny_config(116));
  ASSERT_NE(s, nullptr);
  OnDimmReplayInterposer trojan;
  s->set_on_dimm_interposer(&trojan);

  const Addr target = 0x40;
  s->write(target, CacheLine::filled(0x01));
  ASSERT_TRUE(s->read(target).ok());  // trojan records the inner pair
  s->write(target, CacheLine::filled(0x02));

  // Replay the oldest inner observation into the next read.
  const Loc loc = locate(*s, target);
  (void)loc;
  // line_key 0 corresponds to bg0/bank0/row0/col1? Compute via dimm read
  // path: easiest is to arm on the key the trojan has already seen.
  // The trojan records under (rank<<56)|key; we arm using the first seen.
  // For determinism, write/read target only — the single recorded key.
  trojan.arm(0, /*line_key=*/1);  // col 1 of row 0, bank 0 (addr 0x40)
  const auto r = s->read(target);
  EXPECT_EQ(trojan.replays_performed(), 1u);
  EXPECT_FALSE(r.ok()) << "on-DIMM replay must fail against ECC-chip logic";
}

TEST(Attack, OnDimmReplaySucceedsAgainstTrustedDimmPlacement) {
  // Trusted-DIMM design (§VI-C): the DB decrypts before the interconnect,
  // so the trojan sees PLAINTEXT MACs; replaying a stale (data, MAC) pair
  // re-encrypts correctly and verifies — the attack the paper warns
  // about when InvisiMem-style trust is applied to commodity DIMMs.
  auto cfg = tiny_config(117);
  cfg.dimm.placement = LogicPlacement::kEccDataBuffer;
  auto s = SecureMemorySession::create(cfg);
  ASSERT_NE(s, nullptr);
  OnDimmReplayInterposer trojan;
  s->set_on_dimm_interposer(&trojan);

  const Addr target = 0x40;
  const CacheLine stale = CacheLine::filled(0x01);
  s->write(target, stale);
  ASSERT_TRUE(s->read(target).ok());
  s->write(target, CacheLine::filled(0x02));

  trojan.arm(0, 1);
  const auto r = s->read(target);
  EXPECT_EQ(trojan.replays_performed(), 1u);
  ASSERT_TRUE(r.ok()) << "trusted-DIMM placement cannot detect this";
  EXPECT_EQ(r.data, stale) << "stale data accepted: replay succeeded";
}

// ------------------------------------------------------- no false positives

TEST(Attack, NoFalsePositivesOnLongBenignRun) {
  auto s = SecureMemorySession::create(tiny_config(118));
  ASSERT_NE(s, nullptr);
  // Passive snoop only (records, never tampers).
  SnoopInterposer observer;
  s->set_bus_interposer(&observer);
  Xoshiro256 rng(99);
  std::unordered_map<Addr, CacheLine> shadow;
  for (int i = 0; i < 3000; ++i) {
    const Addr a = line_base(rng.next() % s->capacity());
    if (rng.chance(0.5) || !shadow.count(a)) {
      CacheLine v;
      for (auto& b : v.bytes) b = static_cast<std::uint8_t>(rng.next());
      ASSERT_EQ(s->write(a, v), Violation::kNone);
      shadow[a] = v;
    } else {
      const auto r = s->read(a);
      ASSERT_TRUE(r.ok()) << "false positive at op " << i;
      ASSERT_EQ(r.data, shadow[a]);
    }
  }
  EXPECT_EQ(s->stats().violations(), 0u);
}

// ------------------------------------ tracker vs. controller ground truth

/// Taps the dram::Controller command stream. Maintains the authoritative
/// per-(rank, bg, bank) open row from ACTIVATE/PRECHARGE (refresh closes
/// banks through close_bank, so those two events are complete), replays
/// every ACTIVATE into a core::TrackingInterposer — the view a bus
/// attacker gets — and on every column command cross-checks the
/// attacker's belief against the controller's.
///
/// `start_tracking()` models the attacker attaching mid-stream: before
/// it, ground truth still accumulates but nothing reaches the tracker,
/// so banks whose ACTIVATE predates the attach must resolve as unknown —
/// never as a concrete wrong row.
class TrackerGroundTruth : public dram::CommandObserver {
 public:
  void start_tracking() { tracking_ = true; }

  void on_activate(const dram::DecodedAddr& d, Cycle /*now*/) override {
    truth_[key(d.rank, d.bank_group, d.bank)] = d.row;
    if (!tracking_) return;
    ActivateCmd cmd;
    cmd.rank = d.rank;
    cmd.bank_group = d.bank_group;
    cmd.bank = d.bank;
    cmd.row = d.row;
    tracker_.on_activate(cmd);
  }

  void on_precharge(unsigned rank, unsigned bg, unsigned bank,
                    Cycle /*now*/) override {
    truth_.erase(key(rank, bg, bank));
  }

  void on_column(const dram::DecodedAddr& d, bool /*is_write*/,
                 Cycle /*now*/) override {
    const auto t = truth_.find(key(d.rank, d.bank_group, d.bank));
    // The controller only issues column commands to the open row; if this
    // ever fires the observer hook wiring itself is broken.
    if (t == truth_.end() || t->second != d.row) {
      ++truth_missing_;
      return;
    }
    if (!tracking_) return;
    ++checked_;
    const auto belief = tracker_.open_row_for(d.rank, d.bank_group, d.bank);
    if (!belief) {
      ++unknown_;
    } else if (*belief == d.row) {
      ++matched_;
    } else {
      ++wrong_;
    }
  }

  /// Controller-authoritative open rows right now (rank/bg/bank/row).
  std::vector<dram::DecodedAddr> open_rows() const {
    std::vector<dram::DecodedAddr> out;
    for (const auto& [k, row] : truth_) {
      dram::DecodedAddr d;
      d.rank = static_cast<unsigned>(k >> 32);
      d.bank_group = static_cast<unsigned>((k >> 16) & 0xffff);
      d.bank = static_cast<unsigned>(k & 0xffff);
      d.row = row;
      out.push_back(d);
    }
    return out;
  }

  std::uint64_t checked() const { return checked_; }
  std::uint64_t matched() const { return matched_; }
  std::uint64_t unknown() const { return unknown_; }
  std::uint64_t wrong() const { return wrong_; }
  std::uint64_t truth_missing() const { return truth_missing_; }

 private:
  static std::uint64_t key(unsigned rank, unsigned bg, unsigned bank) {
    return (static_cast<std::uint64_t>(rank) << 32) | (bg << 16) | bank;
  }

  TrackingInterposer tracker_;
  std::unordered_map<std::uint64_t, std::uint64_t> truth_;
  bool tracking_ = false;
  std::uint64_t checked_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t unknown_ = 0;
  std::uint64_t wrong_ = 0;
  std::uint64_t truth_missing_ = 0;
};

/// Drives `ops` random requests through the controller, ticking until
/// drained. Small geometry -> plenty of row conflicts and precharges.
void drive_controller(dram::Controller& ctrl, TrackerGroundTruth& gt,
                      Xoshiro256& rng, int ops, Cycle& now) {
  const std::uint64_t cap = ctrl.geometry().capacity_bytes();
  std::uint64_t tag = now + 1;  // unique across phases
  int issued = 0;
  while (issued < ops || ctrl.pending() > 0) {
    if (issued < ops && rng.chance(0.4)) {
      const bool is_write = rng.chance(0.5);
      if (is_write ? ctrl.can_accept_write() : ctrl.can_accept_read()) {
        const Addr a = line_base(rng.next() % cap);
        if (ctrl.enqueue(a, is_write, tag++, now)) ++issued;
      }
    }
    ctrl.tick(now);
    ctrl.completions().clear();
    ++now;
    ASSERT_LT(now, 10'000'000u) << "controller failed to drain";
  }
  ASSERT_EQ(gt.truth_missing(), 0u)
      << "observer hooks disagree with the controller's own bank state";
}

dram::Geometry tracker_geometry() {
  dram::Geometry g;
  g.ranks = 2;
  g.bank_groups = 2;
  g.banks_per_group = 2;
  g.rows_per_bank = 64;
  g.columns_per_row = 32;
  return g;
}

TEST(Attack, TrackerMatchesControllerGroundTruth) {
  dram::Controller ctrl(tracker_geometry(), dram::Timings::ddr4_3200());
  TrackerGroundTruth gt;
  ctrl.set_command_observer(&gt);
  gt.start_tracking();  // attacker present from the first command
  Xoshiro256 rng(1201);
  Cycle now = 0;
  drive_controller(ctrl, gt, rng, 2000, now);
  EXPECT_GE(gt.checked(), 1900u);  // write-forwarded reads skip the bus
  // Full-stream attacker: every column attributable, and always right.
  EXPECT_EQ(gt.wrong(), 0u);
  EXPECT_EQ(gt.unknown(), 0u);
  EXPECT_EQ(gt.matched(), gt.checked());
  // The run must actually exercise row churn for the check to mean much.
  EXPECT_GT(ctrl.stats().row_misses, 100u);
  EXPECT_GT(ctrl.stats().precharges, 100u);
}

TEST(Attack, MidStreamTrackerResolvesUnknownNeverWrong) {
  dram::Controller ctrl(tracker_geometry(), dram::Timings::ddr4_3200());
  TrackerGroundTruth gt;
  ctrl.set_command_observer(&gt);  // ground truth from cycle 0
  Xoshiro256 rng(1202);
  Cycle now = 0;
  drive_controller(ctrl, gt, rng, 1000, now);  // attacker not yet listening
  gt.start_tracking();  // attacker attaches mid-stream
  // Immediately touch rows still open from the pre-attach stream: these
  // issue as row hits, so the tracker sees a column with no preceding
  // ACTIVATE — the exact case that must resolve as unknown.
  std::uint64_t tag = 1'000'000;
  const auto open = gt.open_rows();
  ASSERT_FALSE(open.empty());
  for (dram::DecodedAddr d : open) {
    d.column = 1;
    ASSERT_TRUE(ctrl.enqueue(ctrl.mapping().encode(d), false, tag++, now));
  }
  drive_controller(ctrl, gt, rng, 2000, now);
  EXPECT_GE(gt.checked(), 1900u);  // write-forwarded reads skip the bus
  // Banks whose ACTIVATE predates the attach resolve as unknown...
  EXPECT_GT(gt.unknown(), 0u);
  // ...and once re-activated, resolve correctly.
  EXPECT_GT(gt.matched(), 0u);
  // Never as a concrete wrong row: a tracker that guessed would aim the
  // derived attacks (replay, redirect) at the wrong line.
  EXPECT_EQ(gt.wrong(), 0u);
}

}  // namespace
}  // namespace secddr::core
