# Runs a bench binary twice — serial (SECDDR_JOBS=1) and parallel
# (SECDDR_JOBS=4) — with a tiny instruction budget and fails unless the
# printed tables are byte-identical.
if(NOT BENCH_BIN)
  message(FATAL_ERROR "BENCH_BIN not set")
endif()

set(ENV{SECDDR_INSTR} 2000)
set(ENV{SECDDR_WARMUP} 500)
set(ENV{SECDDR_CORES} 2)
set(ENV{SECDDR_FILTER} "b")

set(ENV{SECDDR_JOBS} 1)
execute_process(COMMAND ${BENCH_BIN} OUTPUT_VARIABLE serial_out
                RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "serial run failed (rc=${serial_rc})")
endif()

set(ENV{SECDDR_JOBS} 4)
execute_process(COMMAND ${BENCH_BIN} OUTPUT_VARIABLE parallel_out
                RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "parallel run failed (rc=${parallel_rc})")
endif()

if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "serial and parallel outputs differ:\n"
          "--- serial ---\n${serial_out}\n--- parallel ---\n${parallel_out}")
endif()
message(STATUS "serial and parallel sweep outputs are identical")
